"""Buffer allocation seam: heap arrays or named shared-memory segments.

Every columnar layer in the stack (:class:`~repro.storage.arrays.ArrayBDStore`
column matrices, :class:`~repro.graph.csr.CSRGraph` compiled arrays, the
executors' update rings) allocates its flat numpy buffers through this
module instead of calling ``np.empty`` directly.  Two allocators implement
the seam:

* :class:`HeapAllocator` — plain process-private ``np.empty``; the default
  and exactly what the code did before the seam existed.
* :class:`ShmAllocator` — ``multiprocessing.shared_memory`` segments with
  an explicit create/attach/close/unlink lifecycle.  A buffer created here
  is *owned* by the creating process (which must eventually
  :meth:`~Buffer.release` it, unlinking the segment); any other process
  *attaches* via the buffer's :class:`ShmDescriptor` and only ever closes
  its mapping — attachers never unlink.

Descriptors are tiny picklable records ``(segment name, dtype, shape,
generation)``.  The generation stamp lets a publisher that re-allocates a
segment (store growth) refuse stale attaches: the publisher keeps a
one-``int64`` *stamp segment* whose live value must equal the descriptor's
generation at attach time, exactly like the checkpoint stamps of the shard
manifests.

Leak guard: every segment created through :class:`ShmAllocator` is entered
into a per-process registry and unlinked at interpreter exit if the owner
forgot.  :func:`active_segments` scans ``/dev/shm`` for the ``repro_``
namespace so the test suite can assert nothing survived teardown.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, StorageError

try:  # pragma: no cover - the stdlib module exists on every target platform
    from multiprocessing import resource_tracker, shared_memory

    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - exotic platforms only
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    _SHM_AVAILABLE = False

#: Every segment this package creates is named ``repro_<hex>`` so the leak
#: guard (and a human inspecting /dev/shm) can recognise ours.
SEGMENT_PREFIX = "repro_"

#: dtype of the one-value generation stamp segments.
STAMP_DTYPE = np.dtype(np.int64)


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is usable here."""
    return _SHM_AVAILABLE


# --------------------------------------------------------------------------- #
# Owner registry (leak guard)
# --------------------------------------------------------------------------- #
# name -> (owner pid, SharedMemory).  Guarded by a lock: executors allocate
# from the driver thread while atexit may fire elsewhere.
_OWNED: Dict[str, Tuple[int, "shared_memory.SharedMemory"]] = {}
_OWNED_LOCK = threading.Lock()


def _register_owned(segment: "shared_memory.SharedMemory") -> None:
    with _OWNED_LOCK:
        _OWNED[segment.name] = (os.getpid(), segment)


def _forget_owned(name: str) -> None:
    with _OWNED_LOCK:
        _OWNED.pop(name, None)


def owned_segment_names() -> List[str]:
    """Names of segments this process created and has not yet released."""
    pid = os.getpid()
    with _OWNED_LOCK:
        return [name for name, (owner, _) in _OWNED.items() if owner == pid]


def release_all_owned() -> None:
    """Close and unlink every segment this process still owns.

    Registered with :mod:`atexit` as a backstop; normal operation releases
    buffers explicitly and leaves nothing for this to do.  Entries created
    by a parent before a ``fork`` are skipped — they are the parent's to
    unlink.
    """
    pid = os.getpid()
    with _OWNED_LOCK:
        mine = [
            (name, segment)
            for name, (owner, segment) in _OWNED.items()
            if owner == pid
        ]
        for name, _ in mine:
            _OWNED.pop(name, None)
    for _, segment in mine:
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


atexit.register(release_all_owned)


def active_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live ``/dev/shm`` segments in our namespace (sorted).

    On platforms without a ``/dev/shm`` view of POSIX shared memory the
    scan falls back to this process's own registry, which is the best
    available approximation.
    """
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            return sorted(
                name for name in os.listdir(shm_dir) if name.startswith(prefix)
            )
        except OSError:  # pragma: no cover - racing teardown
            pass
    return sorted(owned_segment_names())  # pragma: no cover - non-/dev/shm OS


def _new_segment_name(hint: str = "") -> str:
    # The creator's pid is embedded between unambiguous "-p...-" markers so
    # a supervisor can reclaim everything a SIGKILLed child created (see
    # :func:`reclaim_process_segments`); hints never contain dashes.
    tag = f"{hint.replace('-', '_')}-" if hint else ""
    return f"{SEGMENT_PREFIX}{tag}p{os.getpid():x}-{secrets.token_hex(4)}"


def reclaim_process_segments(pid: int) -> List[str]:
    """Unlink every segment the (dead) process ``pid`` created; return names.

    The crash-reclaim path of the satellite leak guard: a worker that was
    SIGKILLed while *owning* segments (it created shm sweep buffers, say)
    can never run its own teardown, so its supervisor sweeps the namespace
    for the pid marker after confirming the death.  Only call this for a
    process that is known dead — a live owner's segments would be torn out
    from under it.
    """
    marker = f"-p{pid:x}-"
    reclaimed: List[str] = []
    for name in active_segments():
        if marker not in name:
            continue
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        except (FileNotFoundError, OSError):  # pragma: no cover - race
            continue
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - race
            pass
        _forget_owned(name)
        reclaimed.append(name)
    return reclaimed


# --------------------------------------------------------------------------- #
# Descriptors and buffers
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShmDescriptor:
    """Picklable handle to one shared-memory array segment.

    ``generation`` is the publisher's segment generation at export time;
    :func:`attach` compares it against the live stamp (when the publisher
    registered one) and refuses stale handles.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]
    generation: int = 0

    @property
    def nbytes(self) -> int:
        """Exact payload size of the described array."""
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return count * np.dtype(self.dtype).itemsize

    def to_payload(self) -> dict:
        """Plain-dict wire form (JSON-safe apart from tuple->list)."""
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "generation": self.generation,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShmDescriptor":
        """Rebuild a descriptor captured by :meth:`to_payload`."""
        return cls(
            name=str(payload["name"]),
            dtype=str(payload["dtype"]),
            shape=tuple(int(extent) for extent in payload["shape"]),
            generation=int(payload.get("generation", 0)),
        )


class Buffer:
    """One allocated array plus its lifecycle handle.

    ``array`` is the numpy view to compute on.  Heap buffers have a no-op
    lifecycle; shm buffers close their mapping on :meth:`close` and
    additionally unlink the segment on :meth:`release` when this process
    owns it.
    """

    __slots__ = ("array", "_segment", "_owner", "_released")

    def __init__(self, array: np.ndarray, segment=None, owner: bool = False):
        self.array = array
        self._segment = segment
        self._owner = owner
        self._released = False

    @property
    def shared(self) -> bool:
        """Whether the buffer lives in a named shared-memory segment."""
        return self._segment is not None

    @property
    def owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def segment_name(self) -> Optional[str]:
        """The segment name, or ``None`` for heap buffers."""
        return self._segment.name if self._segment is not None else None

    def descriptor(self, generation: int = 0) -> ShmDescriptor:
        """Export the buffer as a :class:`ShmDescriptor` (shm buffers only)."""
        if self._segment is None:
            raise StorageError("heap buffers have no shared-memory descriptor")
        return ShmDescriptor(
            name=self._segment.name,
            dtype=self.array.dtype.str,
            shape=tuple(self.array.shape),
            generation=generation,
        )

    def close(self) -> None:
        """Drop this process's mapping (keeps the segment alive for others)."""
        if self._released or self._segment is None:
            return
        self._released = True
        self.array = None  # the mapping dies with the segment handle
        try:
            self._segment.close()
        except (BufferError, OSError):  # pragma: no cover - exported views
            pass
        if self._owner:
            _forget_owned(self._segment.name)

    def release(self) -> None:
        """Close and, when owner, unlink the segment (idempotent)."""
        if self._released:
            return
        if self._segment is None:
            self._released = True
            self.array = None
            return
        self._released = True
        self.array = None
        name = self._segment.name
        try:
            self._segment.close()
        except (BufferError, OSError):  # pragma: no cover - exported views
            pass
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            _forget_owned(name)


# --------------------------------------------------------------------------- #
# Allocators
# --------------------------------------------------------------------------- #
class HeapAllocator:
    """Process-private numpy buffers — the pre-seam behavior, the default."""

    kind = "heap"

    def empty(self, shape, dtype) -> Buffer:
        """Uninitialised buffer (caller fills every element)."""
        return Buffer(np.empty(shape, dtype=dtype))

    def full(self, shape, dtype, fill_value) -> Buffer:
        """Buffer pre-filled with ``fill_value``."""
        return Buffer(np.full(shape, fill_value, dtype=dtype))

    def zeros(self, shape, dtype) -> Buffer:
        """Zero-filled buffer."""
        return Buffer(np.zeros(shape, dtype=dtype))


class ShmAllocator:
    """Named shared-memory buffers this process owns.

    ``hint`` is folded into segment names for debuggability (segments of
    one store/ring family sort together in ``/dev/shm``).
    """

    kind = "shm"

    def __init__(self, hint: str = "") -> None:
        if not shm_available():  # pragma: no cover - import-guarded
            raise ConfigurationError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        self._hint = hint

    def _create(self, shape, dtype) -> Buffer:
        dtype = np.dtype(dtype)
        shape = (int(shape),) if np.isscalar(shape) else tuple(shape)
        count = 1
        for extent in shape:
            count *= int(extent)
        nbytes = max(1, count * dtype.itemsize)
        segment = shared_memory.SharedMemory(
            name=_new_segment_name(self._hint), create=True, size=nbytes
        )
        _register_owned(segment)
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        return Buffer(array, segment=segment, owner=True)

    def empty(self, shape, dtype) -> Buffer:
        """Uninitialised owned segment (caller fills every element)."""
        return self._create(shape, dtype)

    def full(self, shape, dtype, fill_value) -> Buffer:
        """Owned segment pre-filled with ``fill_value``."""
        buffer = self._create(shape, dtype)
        buffer.array.fill(fill_value)
        return buffer

    def zeros(self, shape, dtype) -> Buffer:
        """Zero-filled owned segment."""
        buffer = self._create(shape, dtype)
        buffer.array.fill(0)
        return buffer


def get_allocator(kind, hint: str = ""):
    """Resolve ``"heap"``/``"shm"`` (or an allocator instance) to an allocator."""
    if isinstance(kind, (HeapAllocator, ShmAllocator)):
        return kind
    if kind in (None, "heap"):
        return HeapAllocator()
    if kind == "shm":
        return ShmAllocator(hint=hint)
    raise ConfigurationError(f"unknown buffer allocator {kind!r}")


# --------------------------------------------------------------------------- #
# Attach side
# --------------------------------------------------------------------------- #
def attach(descriptor: ShmDescriptor, writable: bool = False) -> Buffer:
    """Map an existing segment described by ``descriptor``.

    The returned buffer is an *attachment*: :meth:`Buffer.release` only
    closes the local mapping, never unlinks.  Read-only by default —
    seeded graph structure must not be scribbled on by a worker.
    """
    if not shm_available():  # pragma: no cover - import-guarded
        raise ConfigurationError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    try:
        # Attaching registers the name with the resource tracker a second
        # time; the per-tracker cache is a *set* shared by the whole
        # process tree (fork and spawn both inherit the tracker fd), so
        # the duplicate collapses and the owner's eventual unlink is the
        # single clean unregister.  No manual unregister needed — doing
        # one would double-remove and spam KeyError from the tracker.
        segment = shared_memory.SharedMemory(name=descriptor.name, create=False)
    except FileNotFoundError as exc:
        raise StorageError(
            f"shared-memory segment {descriptor.name!r} does not exist "
            "(owner gone or descriptor stale)"
        ) from exc
    if segment.size < descriptor.nbytes:
        segment.close()
        raise StorageError(
            f"segment {descriptor.name!r} is {segment.size} bytes but the "
            f"descriptor announces {descriptor.nbytes}"
        )
    array = np.ndarray(
        descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=segment.buf
    )
    if not writable:
        array.flags.writeable = False
    return Buffer(array, segment=segment, owner=False)


# --------------------------------------------------------------------------- #
# Generation stamps
# --------------------------------------------------------------------------- #
class GenerationStamp:
    """A one-``int64`` segment publishing a store's live segment generation.

    The owner creates it once, bumps it on every re-allocation, and puts
    its name in every exported descriptor bundle.  Attachers read it and
    refuse descriptors whose recorded generation no longer matches — the
    shared-memory analogue of PR 7's checkpoint stamp refusal.
    """

    def __init__(self, buffer: Buffer) -> None:
        self._buffer = buffer

    @classmethod
    def create(cls, hint: str = "") -> "GenerationStamp":
        """Allocate an owned stamp segment starting at generation 0."""
        buffer = ShmAllocator(hint=f"{hint}_gen" if hint else "gen").zeros(
            (1,), STAMP_DTYPE
        )
        return cls(buffer)

    @property
    def name(self) -> str:
        """The stamp's segment name (goes into descriptor bundles)."""
        return self._buffer.segment_name

    @property
    def value(self) -> int:
        """The live generation."""
        return int(self._buffer.array[0])

    def bump(self) -> int:
        """Advance the live generation; returns the new value."""
        self._buffer.array[0] += 1
        return self.value

    def release(self) -> None:
        """Owner teardown: close and unlink the stamp segment."""
        self._buffer.release()

    @staticmethod
    def check(name: str, expected_generation: int) -> None:
        """Refuse a stale descriptor bundle.

        Attaches the stamp segment named ``name``, compares its live value
        to ``expected_generation`` and raises
        :class:`~repro.exceptions.ConfigurationError` on mismatch (or when
        the stamp — hence the publisher — is gone).
        """
        descriptor = ShmDescriptor(name=name, dtype=STAMP_DTYPE.str, shape=(1,))
        try:
            stamp = attach(descriptor)
        except StorageError as exc:
            raise ConfigurationError(
                f"cannot verify segment generation: stamp {name!r} is gone"
            ) from exc
        try:
            live = int(stamp.array[0])
        finally:
            stamp.release()
        if live != expected_generation:
            raise ConfigurationError(
                f"stale shared-memory descriptors: publisher is at "
                f"generation {live}, descriptor bundle was exported at "
                f"generation {expected_generation}"
            )


def attach_bundle(
    descriptors: Sequence[ShmDescriptor],
    stamp_name: Optional[str] = None,
    writable: bool = False,
) -> List[Buffer]:
    """Attach several segments atomically-ish, with one generation check.

    All descriptors must carry the same generation; when ``stamp_name`` is
    given the live stamp is checked first.  On any failure every mapping
    opened so far is closed before the error propagates.
    """
    generations = {d.generation for d in descriptors}
    if len(generations) > 1:
        raise ConfigurationError(
            f"descriptor bundle mixes generations {sorted(generations)}"
        )
    if stamp_name is not None and descriptors:
        GenerationStamp.check(stamp_name, descriptors[0].generation)
    buffers: List[Buffer] = []
    try:
        for descriptor in descriptors:
            buffers.append(attach(descriptor, writable=writable))
    except Exception:
        for buffer in buffers:
            buffer.release()
        raise
    return buffers
