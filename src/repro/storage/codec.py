"""Binary columnar encoding of per-source betweenness data.

Following Section 5.1 of the paper, each source's record is stored as three
consecutive fixed-width columns — distances, shortest-path counts and
dependencies — so a record can be read sequentially, loaded straight into
arrays and written back in place.  Two departures from the paper's byte
budget are deliberate (documented in DESIGN.md): distances use 2 bytes
(int16, ``-1`` meaning unreachable) and shortest-path counts use 8 bytes
(int64) to avoid overflow on dense graphs.

Both widths are *checked*, not assumed: a distance outside the int16 range
or a path count outside int64 raises :class:`StoreCorruptedError` instead of
silently wrapping into a wrong-but-plausible record.

Two API levels are provided.  The byte level (:func:`encode_record` /
:func:`decode_record`) serialises a whole record to/from ``bytes`` and is
what the buffered seek/read path uses.  The array level
(:func:`encode_record_arrays` / :func:`decode_record_arrays`) works on the
three column arrays directly, so the mmap-backed store can decode records
from zero-copy views and write columns in place without building an
intermediate byte string.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.exceptions import StoreCorruptedError
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex

#: dtypes of the three columns (distance, sigma, delta).
DISTANCE_DTYPE = np.dtype("<i2")
SIGMA_DTYPE = np.dtype("<i8")
DELTA_DTYPE = np.dtype("<f8")

#: Inclusive value bounds enforced at encode time.
MAX_DISTANCE = int(np.iinfo(DISTANCE_DTYPE).max)
MAX_SIGMA = int(np.iinfo(SIGMA_DTYPE).max)

#: bytes per vertex in one record (2 + 8 + 8).
BYTES_PER_VERTEX = (
    DISTANCE_DTYPE.itemsize + SIGMA_DTYPE.itemsize + DELTA_DTYPE.itemsize
)


def record_size(capacity: int) -> int:
    """Size in bytes of one source record with ``capacity`` vertex slots."""
    return capacity * BYTES_PER_VERTEX


def column_offsets(capacity: int) -> Tuple[int, int, int]:
    """Byte offsets of the distance, sigma and delta columns within a record."""
    distance_offset = 0
    sigma_offset = capacity * DISTANCE_DTYPE.itemsize
    delta_offset = sigma_offset + capacity * SIGMA_DTYPE.itemsize
    return distance_offset, sigma_offset, delta_offset


def empty_record(capacity: int) -> bytes:
    """Record representing a source that reaches no vertex (all unreachable)."""
    distance = np.full(capacity, UNREACHABLE, dtype=DISTANCE_DTYPE)
    sigma = np.zeros(capacity, dtype=SIGMA_DTYPE)
    delta = np.zeros(capacity, dtype=DELTA_DTYPE)
    return distance.tobytes() + sigma.tobytes() + delta.tobytes()


def check_ranges(data: SourceData) -> None:
    """Reject values the fixed-width columns cannot represent.

    Without this check a distance ≥ 32768 (or a sigma ≥ 2**63) would wrap on
    the ``int16``/``int64`` cast and decode back as a *different, plausible*
    value — corruption with no error anywhere.  Negative values are equally
    invalid: ``-1`` is the unreachable sentinel and must never be stored
    explicitly.  Exposed so the store can validate a record *before*
    mutating any state (vertex registration, generation bump).
    """
    for vertex, value in data.distance.items():
        if not 0 <= value <= MAX_DISTANCE:
            raise StoreCorruptedError(
                f"distance {value} of vertex {vertex!r} (source "
                f"{data.source!r}) does not fit the int16 distance column "
                f"(valid range 0..{MAX_DISTANCE})"
            )
    for vertex, value in data.sigma.items():
        if not 0 <= value <= MAX_SIGMA:
            raise StoreCorruptedError(
                f"shortest-path count {value} of vertex {vertex!r} (source "
                f"{data.source!r}) does not fit the int64 sigma column "
                f"(valid range 0..{MAX_SIGMA})"
            )


def encode_record_arrays(
    data: SourceData, index: VertexIndex, capacity: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Serialise ``data`` into the three column arrays (range-checked)."""
    if len(index) > capacity:
        raise StoreCorruptedError(
            f"vertex index holds {len(index)} vertices but capacity is {capacity}"
        )
    check_ranges(data)
    distance = np.full(capacity, UNREACHABLE, dtype=DISTANCE_DTYPE)
    sigma = np.zeros(capacity, dtype=SIGMA_DTYPE)
    delta = np.zeros(capacity, dtype=DELTA_DTYPE)
    for values, column in (
        (data.distance, distance),
        (data.sigma, sigma),
        (data.delta, delta),
    ):
        if values:
            slots = np.fromiter(
                (index.slot(v) for v in values), dtype=np.intp, count=len(values)
            )
            column[slots] = np.fromiter(
                values.values(), dtype=column.dtype, count=len(values)
            )
    return distance, sigma, delta


def encode_record(data: SourceData, index: VertexIndex, capacity: int) -> bytes:
    """Serialise ``data`` into the columnar binary format."""
    distance, sigma, delta = encode_record_arrays(data, index, capacity)
    return distance.tobytes() + sigma.tobytes() + delta.tobytes()


def decode_record_arrays(
    distance: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    source: Vertex,
    index: VertexIndex,
) -> SourceData:
    """Deserialise the three column arrays back into a :class:`SourceData`.

    Vectorised: the reachable slots are found with one numpy mask instead of
    a per-slot Python loop, and the dictionaries are built with ``zip`` over
    the (small) reachable subset only.  Slots beyond the current index
    (pre-allocated room for future vertices) are ignored.
    """
    known = len(index)
    reachable = np.nonzero(distance[:known] != UNREACHABLE)[0]
    data = SourceData(source=source)
    if reachable.size == 0:
        return data
    vertices = [index.vertex(slot) for slot in reachable.tolist()]
    data.distance = dict(zip(vertices, distance[reachable].tolist()))
    data.sigma = dict(zip(vertices, sigma[reachable].tolist()))
    data.delta = dict(zip(vertices, delta[reachable].tolist()))
    return data


def decode_record(
    payload: bytes, source: Vertex, index: VertexIndex, capacity: int
) -> SourceData:
    """Deserialise a columnar record back into a :class:`SourceData`.

    Only vertices currently present in ``index`` are materialised; stale
    slots beyond the index (pre-allocated room for future vertices) are
    ignored.  Unreachable vertices are omitted from the dictionaries, which
    is the in-memory convention used throughout the library.
    """
    expected = record_size(capacity)
    if len(payload) != expected:
        raise StoreCorruptedError(
            f"record has {len(payload)} bytes, expected {expected}"
        )
    distance_offset, sigma_offset, delta_offset = column_offsets(capacity)
    distance = np.frombuffer(
        payload, dtype=DISTANCE_DTYPE, count=capacity, offset=distance_offset
    )
    sigma = np.frombuffer(
        payload, dtype=SIGMA_DTYPE, count=capacity, offset=sigma_offset
    )
    delta = np.frombuffer(
        payload, dtype=DELTA_DTYPE, count=capacity, offset=delta_offset
    )
    return decode_record_arrays(distance, sigma, delta, source, index)
