"""Binary columnar encoding of per-source betweenness data.

Following Section 5.1 of the paper, each source's record is stored as three
consecutive fixed-width columns — distances, shortest-path counts and
dependencies — so a record can be read sequentially, loaded straight into
arrays and written back in place.  Two departures from the paper's byte
budget are deliberate (documented in DESIGN.md): distances use 2 bytes
(int16, ``-1`` meaning unreachable) and shortest-path counts use 8 bytes
(int64) to avoid overflow on dense graphs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.exceptions import StoreCorruptedError
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex

#: dtypes of the three columns (distance, sigma, delta).
DISTANCE_DTYPE = np.dtype("<i2")
SIGMA_DTYPE = np.dtype("<i8")
DELTA_DTYPE = np.dtype("<f8")

#: bytes per vertex in one record (2 + 8 + 8).
BYTES_PER_VERTEX = (
    DISTANCE_DTYPE.itemsize + SIGMA_DTYPE.itemsize + DELTA_DTYPE.itemsize
)


def record_size(capacity: int) -> int:
    """Size in bytes of one source record with ``capacity`` vertex slots."""
    return capacity * BYTES_PER_VERTEX


def column_offsets(capacity: int) -> Tuple[int, int, int]:
    """Byte offsets of the distance, sigma and delta columns within a record."""
    distance_offset = 0
    sigma_offset = capacity * DISTANCE_DTYPE.itemsize
    delta_offset = sigma_offset + capacity * SIGMA_DTYPE.itemsize
    return distance_offset, sigma_offset, delta_offset


def empty_record(capacity: int) -> bytes:
    """Record representing a source that reaches no vertex (all unreachable)."""
    distance = np.full(capacity, UNREACHABLE, dtype=DISTANCE_DTYPE)
    sigma = np.zeros(capacity, dtype=SIGMA_DTYPE)
    delta = np.zeros(capacity, dtype=DELTA_DTYPE)
    return distance.tobytes() + sigma.tobytes() + delta.tobytes()


def encode_record(data: SourceData, index: VertexIndex, capacity: int) -> bytes:
    """Serialise ``data`` into the columnar binary format."""
    if len(index) > capacity:
        raise StoreCorruptedError(
            f"vertex index holds {len(index)} vertices but capacity is {capacity}"
        )
    distance = np.full(capacity, UNREACHABLE, dtype=DISTANCE_DTYPE)
    sigma = np.zeros(capacity, dtype=SIGMA_DTYPE)
    delta = np.zeros(capacity, dtype=DELTA_DTYPE)
    for vertex, value in data.distance.items():
        distance[index.slot(vertex)] = value
    for vertex, value in data.sigma.items():
        sigma[index.slot(vertex)] = value
    for vertex, value in data.delta.items():
        delta[index.slot(vertex)] = value
    return distance.tobytes() + sigma.tobytes() + delta.tobytes()


def decode_record(
    payload: bytes, source: Vertex, index: VertexIndex, capacity: int
) -> SourceData:
    """Deserialise a columnar record back into a :class:`SourceData`.

    Only vertices currently present in ``index`` are materialised; stale
    slots beyond the index (pre-allocated room for future vertices) are
    ignored.  Unreachable vertices are omitted from the dictionaries, which
    is the in-memory convention used throughout the library.
    """
    expected = record_size(capacity)
    if len(payload) != expected:
        raise StoreCorruptedError(
            f"record has {len(payload)} bytes, expected {expected}"
        )
    distance_offset, sigma_offset, delta_offset = column_offsets(capacity)
    distance = np.frombuffer(
        payload, dtype=DISTANCE_DTYPE, count=capacity, offset=distance_offset
    )
    sigma = np.frombuffer(
        payload, dtype=SIGMA_DTYPE, count=capacity, offset=sigma_offset
    )
    delta = np.frombuffer(
        payload, dtype=DELTA_DTYPE, count=capacity, offset=delta_offset
    )

    data = SourceData(source=source)
    for slot in range(len(index)):
        stored_distance = int(distance[slot])
        if stored_distance == UNREACHABLE:
            continue
        vertex = index.vertex(slot)
        data.distance[vertex] = stored_distance
        data.sigma[vertex] = int(sigma[slot])
        data.delta[vertex] = float(delta[slot])
    return data
