"""Durable out-of-core betweenness-data store (the paper's "DO" configuration).

The store keeps one binary file containing a versioned header, ``capacity``
fixed-size records (one per source slot, each laid out columnarly:
distances, then shortest-path counts, then dependencies — Section 5.1) and
a metadata block persisting the vertex index and the source set (see
:mod:`repro.storage.header` for the exact layout).  Records are:

* read sequentially, source by source, during an update sweep;
* peeked at cheaply: the ``dd == 0`` skip needs only the two distances of
  the updated endpoints, which are read directly at their column offsets
  without touching the sigma/delta columns;
* written back *in place*, so processing an update stream never rewrites the
  whole file.

Because the header records everything needed to interpret the record area,
a store written by one process can be closed and later **reopened** with
:meth:`DiskBDStore.open` — no truncation, no re-running Brandes — which is
what the framework's checkpoint/resume path builds on.  Constructing a new
store on a path that already holds data refuses with
:class:`~repro.exceptions.StoreExistsError` instead of clobbering it.

Record access is mmap-backed by default: the record area is mapped once and
exposed as three strided numpy column views, so a record load is a zero-copy
slice instead of a seek + read + buffer copy.  Pass ``use_mmap=False`` for
the plain buffered-IO path (kept for comparison; see
``benchmarks/bench_store_io.py``).  Standard mmap semantics apply: the
mapping assumes no other process resizes the file while the store is open —
an externally *truncated* file can fault the process on access (reopening
it detects the truncation cleanly, as does the buffered path, which raises
:class:`~repro.exceptions.StoreCorruptedError` on the short read).

The file is pre-allocated with room for ``capacity`` vertices (and as many
source slots); when the evolving graph outgrows it, the store rebuilds the
file with a larger capacity by *streaming* records into a sibling file —
one record in memory at a time — and atomically replacing the old file.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.exceptions import (
    ConfigurationError,
    StoreClosedError,
    StoreCorruptedError,
    StoreExistsError,
)
from repro.storage.base import BDStore
from repro.storage.codec import (
    DELTA_DTYPE,
    DISTANCE_DTYPE,
    SIGMA_DTYPE,
    check_ranges,
    column_offsets,
    decode_record_arrays,
    empty_record,
    encode_record_arrays,
    record_size,
)
from repro.storage.header import (
    FLAG_DIRECTED,
    HEADER_SIZE,
    encode_metadata,
    metadata_crc,
    pack_header,
    read_layout,
)
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex

PathLike = Union[str, Path]

#: Default headroom left for future vertices when sizing the file.
DEFAULT_GROWTH_FACTOR = 1.25


class DiskBDStore(BDStore):
    """Columnar on-disk store for ``BD[.]`` records.

    Parameters
    ----------
    vertices:
        Initial vertex set; every vertex receives both a column slot and a
        source record.
    path:
        File to use.  When omitted a temporary file is created and deleted on
        :meth:`close`.  A named path that already holds data is refused
        (:class:`~repro.exceptions.StoreExistsError`) — reopen it with
        :meth:`open` instead.
    capacity:
        Number of vertex slots to pre-allocate.  Defaults to the initial
        vertex count padded by ``DEFAULT_GROWTH_FACTOR`` so that a modest
        number of new vertices can arrive without rebuilding the file.
    sources:
        Vertices that are sources of this store.  Defaults to all of
        ``vertices``; a parallel worker restricted to a partition passes its
        partition here while still giving every graph vertex a column slot.
    use_mmap:
        Map the record area and serve record loads as zero-copy numpy views
        (default).  ``False`` selects the buffered seek/read path.
    sweep_allocator:
        Buffered mode only: where :meth:`begin_column_sweep` materialises
        the per-batch column matrices — ``"heap"`` (default) or ``"shm"``
        (shared-memory segments, the zero-copy data plane).  Irrelevant in
        mmap mode, whose columns are always in place.
    directed:
        Orientation of the graph the records will describe.  Persisted as a
        header flag bit; :meth:`open` restores it and the framework refuses
        to pair the store with a graph of the other orientation (the record
        layout is identical either way, but the records' *meaning* is not).
    """

    def __init__(
        self,
        vertices: Iterable[Vertex],
        path: Optional[PathLike] = None,
        capacity: Optional[int] = None,
        sources: Optional[Iterable[Vertex]] = None,
        use_mmap: bool = True,
        directed: bool = False,
        sweep_allocator: Optional[str] = None,
    ) -> None:
        index = VertexIndex(vertices)
        # Every vertex gets a column slot; only sources get a meaningful
        # record.  Vertices registered later (e.g. owned by another worker's
        # partition) get a column slot only.
        if sources is None:
            source_set = set(index.vertices())
        else:
            source_set = set(sources)
            unknown = source_set - set(index.vertices())
            if unknown:
                raise StoreCorruptedError(
                    f"sources {sorted(map(repr, unknown))} are not among the "
                    "store's vertices"
                )
        initial = len(index)
        if capacity is None:
            capacity = max(initial, int(initial * DEFAULT_GROWTH_FACTOR), 16)
        if capacity < initial:
            raise StoreCorruptedError(
                f"capacity {capacity} is smaller than the vertex count {initial}"
            )

        if path is None:
            handle, tmp_path = tempfile.mkstemp(prefix="repro-bd-", suffix=".bin")
            os.close(handle)
            path = Path(tmp_path)
            owns_file = True
        else:
            path = Path(path)
            owns_file = False
            if path.exists() and path.stat().st_size > 0:
                raise StoreExistsError(
                    f"{path} already holds data; refusing to truncate it — "
                    "use DiskBDStore.open(path) to reopen the existing store"
                )

        self._attach(
            path=path,
            file=open(path, "w+b"),
            capacity=capacity,
            index=index,
            source_set=source_set,
            owns_file=owns_file,
            use_mmap=use_mmap,
            directed=directed,
            sweep_allocator=sweep_allocator,
        )
        self._format_file()
        self._setup_maps()

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: PathLike, use_mmap: bool = True) -> "DiskBDStore":
        """Reopen an existing store file, validating its header and metadata.

        The capacity, vertex index (slot order) and source set are restored
        from the file's metadata block; records are served in place without
        any rewriting.  Raises :class:`~repro.exceptions.StoreCorruptedError`
        (or :class:`~repro.exceptions.StoreVersionError`) when the file is
        not a store, is truncated, fails its checksum, or was written by an
        unsupported format version.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no store file at {path}")
        file = open(path, "r+b")
        try:
            layout = read_layout(
                file, os.fstat(file.fileno()).st_size, record_size
            )
        except Exception:
            file.close()
            raise
        self = cls.__new__(cls)
        self._attach(
            path=path,
            file=file,
            capacity=layout.capacity,
            index=VertexIndex(layout.vertices),
            source_set=set(layout.sources),
            owns_file=False,
            use_mmap=use_mmap,
            directed=layout.directed,
        )
        self._generation = layout.generation
        self._setup_maps()
        return self

    @classmethod
    def open_or_create(
        cls,
        vertices: Iterable[Vertex],
        path: PathLike,
        capacity: Optional[int] = None,
        sources: Optional[Iterable[Vertex]] = None,
        use_mmap: bool = True,
    ) -> "DiskBDStore":
        """Reopen ``path`` when it holds a store, create a fresh one otherwise."""
        path = Path(path)
        if path.exists() and path.stat().st_size > 0:
            return cls.open(path, use_mmap=use_mmap)
        return cls(
            vertices, path=path, capacity=capacity, sources=sources, use_mmap=use_mmap
        )

    def _attach(
        self,
        path: Path,
        file,
        capacity: int,
        index: VertexIndex,
        source_set: Set[Vertex],
        owns_file: bool,
        use_mmap: bool,
        directed: bool = False,
        sweep_allocator: Optional[str] = None,
    ) -> None:
        """Initialise instance state shared by ``__init__`` and ``open``."""
        self._path = path
        self._file = file
        self._capacity = capacity
        self._index = index
        self._source_set = source_set
        self._owns_file = owns_file
        self._use_mmap = use_mmap
        self._directed = directed
        self._closed = False
        self._bytes_read = 0
        self._bytes_written = 0
        self._mm: Optional[mmap.mmap] = None
        self._generation = 0
        self._dirty = False
        self._record_bytes = record_size(capacity)
        self._data_end = HEADER_SIZE + capacity * self._record_bytes
        self._sweep_allocator = sweep_allocator
        self._sweep_buffers: Optional[list] = None
        self._sweep_views: Optional[tuple] = None
        self._sweep_dirty_slots: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Properties and statistics
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Location of the backing file."""
        return self._path

    @property
    def vertex_index(self) -> VertexIndex:
        """The store's vertex/slot assignment (shared with the array kernel)."""
        return self._index

    @property
    def columns_in_place(self) -> bool:
        """Whether writable column views alias the store.

        Always true in mmap mode; true in buffered mode while a
        :meth:`begin_column_sweep` window is open (the views then alias the
        materialised sweep buffers, written back at
        :meth:`end_column_sweep`).
        """
        return self._mm is not None or self._sweep_views is not None

    @property
    def capacity(self) -> int:
        """Number of vertex slots currently allocated per record."""
        return self._capacity

    @property
    def directed(self) -> bool:
        """Orientation recorded in the store header (and enforced on resume)."""
        return self._directed

    @property
    def uses_mmap(self) -> bool:
        """Whether record access goes through the mmap views."""
        return self._use_mmap

    @property
    def persistent(self) -> bool:
        """Whether the backing file outlives :meth:`close`.

        True for caller-named paths (and anything reopened via
        :meth:`open`); False for the self-owned temporary file, which is
        unlinked on close.
        """
        return not self._owns_file

    @property
    def generation(self) -> int:
        """Persisted modification counter.

        Bumped (and synced to the metadata block) on the first record
        mutation after creation, :meth:`open` or :meth:`flush`, so a
        checkpoint taken at generation ``g`` can detect that the store was
        modified afterwards.
        """
        return self._generation

    @property
    def bytes_read(self) -> int:
        """Total bytes read since creation (I/O accounting for experiments)."""
        return self._bytes_read

    @property
    def bytes_written(self) -> int:
        """Total bytes written since creation."""
        return self._bytes_written

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    def put(self, data: SourceData) -> None:
        self._ensure_open()
        # Validate before touching any state: a rejected record must not
        # register vertices, bump the generation or move the file.
        check_ranges(data)
        self._mark_dirty()
        if data.source not in self._index:
            self._register_vertex(data.source)
        if data.source not in self._source_set:
            self._source_set.add(data.source)
            self._sync_metadata()
        distance, sigma, delta = encode_record_arrays(
            data, self._index, self._capacity
        )
        slot = self._index.slot(data.source)
        if self._mm is not None:
            self._dist_view[slot] = distance
            self._sigma_view[slot] = sigma
            self._delta_view[slot] = delta
        elif self._sweep_views is not None:
            dist_buf, sigma_buf, delta_buf = self._sweep_views
            dist_buf[slot] = distance
            sigma_buf[slot] = sigma
            delta_buf[slot] = delta
            self._sweep_dirty_slots.add(slot)
        else:
            self._file.seek(self._record_offset(slot))
            self._file.write(
                distance.tobytes() + sigma.tobytes() + delta.tobytes()
            )
        self._bytes_written += self._record_bytes

    def get(self, source: Vertex) -> SourceData:
        self._ensure_open()
        distance, sigma, delta = self.record_columns(source)
        return decode_record_arrays(distance, sigma, delta, source, self._index)

    def record_columns(
        self, source: Vertex, writable: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Load the raw ``(distance, sigma, delta)`` columns of one record.

        This is the low-level record load underneath :meth:`get`: with mmap
        it returns zero-copy views into the mapped record area; the buffered
        path seeks, reads the record's bytes and wraps them.  Exposed so
        experiments can measure raw record-load throughput without the
        dictionary-materialisation cost of full decoding.

        With ``writable=False`` (default) treat the arrays as read-only —
        in mmap mode they alias the store file, so writing through them
        would bypass :meth:`put` and its range checks.  ``writable=True``
        is the array kernel's update-sweep path: in mmap mode it marks the
        store dirty and hands out the live views for an in-place repair
        (finish with :meth:`record_written`); in buffered mode it returns
        fresh writable copies (finish with :meth:`put_columns`).  Check
        :attr:`columns_in_place` to know which contract applies.
        """
        self._ensure_open()
        slot = self._index.slot(source)
        self._bytes_read += self._record_bytes
        columns = self._read_slot_columns(slot)
        if not writable:
            return columns
        if self._mm is not None:
            self._mark_dirty()
            return columns
        if self._sweep_views is not None:
            self._mark_dirty()
            self._sweep_dirty_slots.add(slot)
            return columns
        distance, sigma, delta = columns
        return distance.copy(), sigma.copy(), delta.copy()

    def put_columns(
        self,
        source: Vertex,
        distance: np.ndarray,
        sigma: np.ndarray,
        delta: np.ndarray,
    ) -> None:
        """Bulk-write one record's columns (shorter-than-capacity allowed).

        The kernel-side counterpart of :meth:`put`: the record arrives as
        ready-made column arrays (already slot-indexed and dtype-correct),
        so no dictionary encoding happens.  Column entries beyond
        ``len(distance)`` keep their current bytes, which are the
        "unreachable" defaults for slots registered after the record was
        computed.
        """
        self._ensure_open()
        self._mark_dirty()
        if source not in self._index:
            self._register_vertex(source)
        if source not in self._source_set:
            self._source_set.add(source)
            self._sync_metadata()
        slot = self._index.slot(source)
        k = len(distance)
        if self._mm is not None:
            self._dist_view[slot, :k] = distance
            self._sigma_view[slot, :k] = sigma
            self._delta_view[slot, :k] = delta
        elif self._sweep_views is not None:
            dist_buf, sigma_buf, delta_buf = self._sweep_views
            dist_buf[slot, :k] = distance
            sigma_buf[slot, :k] = sigma
            delta_buf[slot, :k] = delta
            self._sweep_dirty_slots.add(slot)
        else:
            distance_offset, sigma_offset, delta_offset = column_offsets(
                self._capacity
            )
            base = self._record_offset(slot)
            for offset, column, dtype in (
                (distance_offset, distance, DISTANCE_DTYPE),
                (sigma_offset, sigma, SIGMA_DTYPE),
                (delta_offset, delta, DELTA_DTYPE),
            ):
                self._file.seek(base + offset)
                self._file.write(np.ascontiguousarray(column, dtype=dtype).tobytes())
        self._bytes_written += self._record_bytes

    def record_written(self, source: Vertex) -> None:
        """Account for an in-place (mmap view) record repair."""
        self._ensure_open()
        self._bytes_written += self._record_bytes

    def column_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live ``(distance, sigma, delta)`` matrices, rows = vertex slots.

        The mmap record area already *is* a strided ``(capacity,
        capacity)`` matrix per column, so the kernel's cohort repair can
        gather and write back whole slabs of records with fancy row
        indexing — the same bulk protocol
        :meth:`repro.storage.arrays.ArrayBDStore.column_matrices` serves
        in RAM.  In buffered mode the matrices exist only inside a
        :meth:`begin_column_sweep` window (outside one the store reports
        ``columns_in_place = False``, which is the capability bit the
        kernel checks first).  The views are replaced whenever the file is
        rebuilt for growth — callers must re-fetch per sweep.
        """
        self._ensure_open()
        if self._mm is not None:
            return self._dist_view, self._sigma_view, self._delta_view
        if self._sweep_views is not None:
            # The kernel writes whole record rows back through these
            # matrices; every source row may be touched by the sweep.
            self._sweep_dirty_slots.update(
                self._index.slot(s) for s in self._source_set
            )
            return self._sweep_views
        raise ConfigurationError(
            "column matrices require the mmap record area or an open "
            "begin_column_sweep() window (buffered mode)"
        )

    def row_of_source_slot(self, slot: int) -> int:
        """Matrix row of the source with vertex slot ``slot``.

        Disk records are laid out one per vertex slot, so the row *is* the
        slot; the lookup still validates that the slot's vertex really is a
        source of this store, mirroring the RAM store's contract.
        """
        self._ensure_open()
        vertex = self._index.vertex(slot)
        if vertex not in self._source_set:
            raise KeyError(vertex)
        return int(slot)

    def peek_distance_block(
        self, source_slots, vertex_slots
    ) -> Optional[np.ndarray]:
        """Distances of ``vertex_slots`` from every slot in ``source_slots``.

        With mmap this is one fancy-indexed gather over the mapped distance
        column — the vectorized Proposition 3.1 peek of the array kernel.
        In buffered mode each source costs a single seek + contiguous read
        spanning the requested slots (instead of one round trip per
        endpoint), and the block is gathered from that span.
        """
        self._ensure_open()
        if self._mm is not None or self._sweep_views is not None:
            dist = (
                self._dist_view
                if self._mm is not None
                else self._sweep_views[0]
            )
            self._bytes_read += (
                len(source_slots) * len(vertex_slots) * DISTANCE_DTYPE.itemsize
            )
            return dist[np.ix_(source_slots, vertex_slots)]
        src = np.asarray(source_slots, dtype=np.int64)
        cols = np.asarray(vertex_slots, dtype=np.int64)
        block = np.empty((src.size, cols.size), dtype=DISTANCE_DTYPE)
        if src.size == 0 or cols.size == 0:
            return block
        lo = int(cols.min())
        span = int(cols.max()) - lo + 1
        rel = cols - lo
        item = DISTANCE_DTYPE.itemsize
        for row, slot in enumerate(src.tolist()):
            self._file.seek(self._record_offset(slot) + lo * item)
            raw = self._file.read(span * item)
            block[row] = np.frombuffer(raw, dtype=DISTANCE_DTYPE, count=span)[rel]
        self._bytes_read += src.size * span * item
        return block

    def endpoint_distances(
        self, source: Vertex, u: Vertex, v: Vertex
    ) -> Tuple[Optional[int], Optional[int]]:
        """Read only the two distance entries needed for the ``dd == 0`` skip."""
        self._ensure_open()
        source_slot = self._index.slot(source)
        result: List[Optional[int]] = []
        for vertex in (u, v):
            if vertex not in self._index:
                result.append(None)
                continue
            vertex_slot = self._index.slot(vertex)
            self._bytes_read += DISTANCE_DTYPE.itemsize
            if self._mm is not None:
                value = int(self._dist_view[source_slot, vertex_slot])
            elif self._sweep_views is not None:
                value = int(self._sweep_views[0][source_slot, vertex_slot])
            else:
                offset = (
                    self._record_offset(source_slot)
                    + vertex_slot * DISTANCE_DTYPE.itemsize
                )
                self._file.seek(offset)
                raw = self._file.read(DISTANCE_DTYPE.itemsize)
                value = int(np.frombuffer(raw, dtype=DISTANCE_DTYPE, count=1)[0])
            result.append(None if value == UNREACHABLE else value)
        return result[0], result[1]

    def add_source(self, source: Vertex) -> None:
        self._ensure_open()
        if source in self._source_set:
            return
        self._mark_dirty()
        if source not in self._index:
            self._register_vertex(source)
        self._source_set.add(source)
        self._sync_metadata()
        self._write_identity(self._index.slot(source))

    def register_vertex(self, vertex: Vertex) -> None:
        """Allocate a column slot for ``vertex`` without making it a source."""
        self._ensure_open()
        if vertex not in self._index:
            self._mark_dirty()
            self._register_vertex(vertex)

    def snapshot(self):
        """Materialise every record; decoding already yields fresh objects,
        so no defensive copy is needed (unlike the in-memory store)."""
        return {source: self.get(source) for source in self.sources()}

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def sources(self) -> Iterator[Vertex]:
        self._ensure_open()
        return iter(
            [v for v in self._index.vertices() if v in self._source_set]
        )

    def __len__(self) -> int:
        return len(self._source_set)

    def __contains__(self, source: Vertex) -> bool:
        return source in self._source_set

    # ------------------------------------------------------------------ #
    # Buffered cohort-sweep window
    # ------------------------------------------------------------------ #
    def begin_column_sweep(self) -> bool:
        """Open a materialised-columns window over the record area.

        Buffered mode only: the whole record area is read once into three
        ``(capacity, capacity)`` column matrices (allocated heap or
        shared-memory per ``sweep_allocator``), record access is served
        from them, and :meth:`end_column_sweep` writes the touched rows
        back in one pass — which is what lets the kernel's cohort repair
        (:attr:`columns_in_place` + :meth:`column_matrices`) run over a
        store that otherwise has no live matrices.  Returns ``True`` when a
        window opened; ``False`` in mmap mode (columns are always in
        place) or when a window is already open.
        """
        self._ensure_open()
        if self._mm is not None or self._sweep_views is not None:
            return False
        from repro.storage.buffers import get_allocator

        allocator = get_allocator(self._sweep_allocator, hint="sweep")
        capacity = self._capacity
        area = capacity * self._record_bytes
        self._file.seek(HEADER_SIZE)
        raw = self._file.read(area)
        if len(raw) != area:
            raise StoreCorruptedError(
                f"short read of the record area: got {len(raw)} of {area} "
                "bytes"
            )
        distance_offset, sigma_offset, delta_offset = column_offsets(capacity)
        strides = lambda dtype: (self._record_bytes, dtype.itemsize)  # noqa: E731
        buffers = []
        views = []
        for offset, dtype in (
            (distance_offset, DISTANCE_DTYPE),
            (sigma_offset, SIGMA_DTYPE),
            (delta_offset, DELTA_DTYPE),
        ):
            source = np.ndarray(
                (capacity, capacity),
                dtype,
                buffer=raw,
                offset=offset,
                strides=strides(dtype),
            )
            buffer = allocator.empty((capacity, capacity), dtype)
            buffer.array[:] = source
            buffers.append(buffer)
            views.append(buffer.array)
        self._bytes_read += area
        self._sweep_buffers = buffers
        self._sweep_views = tuple(views)
        self._sweep_dirty_slots = set()
        return True

    def end_column_sweep(self) -> None:
        """Write the window's touched rows back and release its buffers.

        One seek + one contiguous record write per dirty slot — the
        "write back once per batch" half of the buffered cohort sweep.
        No-op when no window is open.
        """
        if self._sweep_views is None:
            return
        dist_buf, sigma_buf, delta_buf = self._sweep_views
        try:
            if not self._closed:
                for slot in sorted(self._sweep_dirty_slots):
                    self._file.seek(self._record_offset(slot))
                    self._file.write(
                        dist_buf[slot].tobytes()
                        + sigma_buf[slot].tobytes()
                        + delta_buf[slot].tobytes()
                    )
                    self._bytes_written += self._record_bytes
                self._file.flush()
        finally:
            buffers = self._sweep_buffers or []
            self._sweep_views = None
            self._sweep_buffers = None
            self._sweep_dirty_slots = set()
            for buffer in buffers:
                buffer.release()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Push mapped pages and buffered writes out to the file."""
        self._ensure_open()
        if self._mm is not None:
            self._mm.flush()
        self._file.flush()
        self._dirty = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._sweep_views is not None:
            # Closing mid-window (error paths) discards the sweep: the file
            # still holds the last committed batch, which is the consistent
            # state to leave behind.
            buffers = self._sweep_buffers or []
            self._sweep_views = None
            self._sweep_buffers = None
            self._sweep_dirty_slots = set()
            for buffer in buffers:
                buffer.release()
        self._teardown_maps()
        self._file.flush()
        self._file.close()
        if self._owns_file and self._path.exists():
            self._path.unlink()

    # ------------------------------------------------------------------ #
    # Internals: layout
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"disk store at {self._path} has been closed")

    def _record_offset(self, slot: int) -> int:
        return HEADER_SIZE + slot * self._record_bytes

    def _header_flags(self) -> int:
        return FLAG_DIRECTED if self._directed else 0

    def _setup_maps(self) -> None:
        """(Re)create the mmap and the three strided column views."""
        self._record_bytes = record_size(self._capacity)
        self._data_end = HEADER_SIZE + self._capacity * self._record_bytes
        if not self._use_mmap:
            self._mm = None
            return
        self._file.flush()
        # Map only header + record area: its length is fixed per capacity,
        # so metadata rewrites after it never invalidate the mapping.
        self._mm = mmap.mmap(self._file.fileno(), self._data_end)
        capacity = self._capacity
        distance_offset, sigma_offset, delta_offset = column_offsets(capacity)
        strides = lambda dtype: (self._record_bytes, dtype.itemsize)  # noqa: E731
        self._dist_view = np.ndarray(
            (capacity, capacity),
            DISTANCE_DTYPE,
            buffer=self._mm,
            offset=HEADER_SIZE + distance_offset,
            strides=strides(DISTANCE_DTYPE),
        )
        self._sigma_view = np.ndarray(
            (capacity, capacity),
            SIGMA_DTYPE,
            buffer=self._mm,
            offset=HEADER_SIZE + sigma_offset,
            strides=strides(SIGMA_DTYPE),
        )
        self._delta_view = np.ndarray(
            (capacity, capacity),
            DELTA_DTYPE,
            buffer=self._mm,
            offset=HEADER_SIZE + delta_offset,
            strides=strides(DELTA_DTYPE),
        )

    def _teardown_maps(self) -> None:
        if self._mm is None:
            return
        self._dist_view = self._sigma_view = self._delta_view = None
        self._mm.flush()
        self._mm.close()
        self._mm = None

    def _format_file(self) -> None:
        """Write a fresh file in one pass: header, records, metadata block.

        Each record is written exactly once — source slots directly as
        self-reaching identity records (d=0, sigma=1, delta=0), everything
        else as empty "reaches nothing" records — so the creation I/O equals
        the resulting file size (the previous formatter wrote every source
        record twice).
        """
        meta = encode_metadata(
            self._index.vertices(), list(self._source_set), self._generation
        )
        self._file.seek(0)
        self._file.truncate()
        self._file.write(
            pack_header(
                self._capacity, len(meta), metadata_crc(meta), self._header_flags()
            )
        )
        empty = empty_record(self._capacity)
        distance_offset, sigma_offset, _ = column_offsets(self._capacity)
        for slot in range(self._capacity):
            vertex = (
                self._index.vertex(slot) if slot < len(self._index) else None
            )
            if vertex is not None and vertex in self._source_set:
                record = bytearray(empty)
                base = distance_offset + slot * DISTANCE_DTYPE.itemsize
                record[base : base + DISTANCE_DTYPE.itemsize] = DISTANCE_DTYPE.type(
                    0
                ).tobytes()
                base = sigma_offset + slot * SIGMA_DTYPE.itemsize
                record[base : base + SIGMA_DTYPE.itemsize] = SIGMA_DTYPE.type(
                    1
                ).tobytes()
                # delta[slot] = 0.0 is already what the empty record holds.
                self._file.write(bytes(record))
            else:
                self._file.write(empty)
        self._file.write(meta)
        self._file.flush()
        self._bytes_written += HEADER_SIZE + self._capacity * len(empty) + len(meta)

    def _sync_metadata(self) -> None:
        """Persist the vertex index and source set after a mutation.

        The metadata block lives *after* the fixed record area, so rewriting
        it never moves a record; the header is then updated with the new
        size and checksum.  Called eagerly on every index/source change so a
        process that dies without :meth:`close` still leaves a reopenable
        file.
        """
        meta = encode_metadata(
            self._index.vertices(), list(self._source_set), self._generation
        )
        self._file.seek(self._data_end)
        self._file.truncate()
        self._file.write(meta)
        self._file.seek(0)
        self._file.write(
            pack_header(
                self._capacity, len(meta), metadata_crc(meta), self._header_flags()
            )
        )
        self._file.flush()
        self._bytes_written += len(meta) + HEADER_SIZE

    def _mark_dirty(self) -> None:
        """Bump the generation on the first mutation of a clean session."""
        if self._dirty:
            return
        self._dirty = True
        self._generation += 1
        self._sync_metadata()

    def _write_identity(self, slot: int) -> None:
        """Make ``slot``'s record a self-reaching source (d=0, sigma=1, delta=0)."""
        if self._mm is not None:
            self._dist_view[slot, slot] = 0
            self._sigma_view[slot, slot] = 1
            self._delta_view[slot, slot] = 0.0
        elif self._sweep_views is not None:
            dist_buf, sigma_buf, delta_buf = self._sweep_views
            dist_buf[slot, slot] = 0
            sigma_buf[slot, slot] = 1
            delta_buf[slot, slot] = 0.0
            self._sweep_dirty_slots.add(slot)
        else:
            distance_offset, sigma_offset, delta_offset = column_offsets(
                self._capacity
            )
            base = self._record_offset(slot)
            for column_offset, dtype, value in (
                (distance_offset, DISTANCE_DTYPE, 0),
                (sigma_offset, SIGMA_DTYPE, 1),
                (delta_offset, DELTA_DTYPE, 0.0),
            ):
                self._file.seek(base + column_offset + slot * dtype.itemsize)
                self._file.write(dtype.type(value).tobytes())
        self._bytes_written += (
            DISTANCE_DTYPE.itemsize + SIGMA_DTYPE.itemsize + DELTA_DTYPE.itemsize
        )

    # ------------------------------------------------------------------ #
    # Internals: growth
    # ------------------------------------------------------------------ #
    def _register_vertex(self, vertex: Vertex) -> None:
        if len(self._index) >= self._capacity:
            self._grow(vertex)
        else:
            self._index.add(vertex)
            self._sync_metadata()

    def _grow(self, new_vertex: Vertex) -> None:
        """Rebuild the file with a larger capacity to make room for ``new_vertex``.

        Records are *streamed* into a sibling file — one record's columns in
        memory at a time, padded to the new capacity — and the sibling
        atomically replaces the old file, so growth uses O(record) memory
        instead of materialising every decoded record at once.
        """
        if self._sweep_views is not None:
            raise ConfigurationError(
                "the store cannot grow inside an open column-sweep window; "
                "register the batch's new vertices before begin_column_sweep"
            )
        old_vertex_count = len(self._index)
        self._index.add(new_vertex)
        new_capacity = max(
            int(self._capacity * DEFAULT_GROWTH_FACTOR) + 1, len(self._index)
        )
        new_record_bytes = record_size(new_capacity)
        pad = new_capacity - self._capacity
        distance_pad = np.full(pad, UNREACHABLE, dtype=DISTANCE_DTYPE).tobytes()
        sigma_pad = np.zeros(pad, dtype=SIGMA_DTYPE).tobytes()
        delta_pad = np.zeros(pad, dtype=DELTA_DTYPE).tobytes()
        meta = encode_metadata(
            self._index.vertices(), list(self._source_set), self._generation
        )
        empty = empty_record(new_capacity)

        sibling = self._path.with_name(self._path.name + ".grow")
        with open(sibling, "w+b") as out:
            out.write(
                pack_header(
                    new_capacity, len(meta), metadata_crc(meta), self._header_flags()
                )
            )
            for slot in range(new_capacity):
                if (
                    slot < old_vertex_count
                    and self._index.vertex(slot) in self._source_set
                ):
                    distance, sigma, delta = self._read_slot_columns(slot)
                    out.write(distance.tobytes())
                    out.write(distance_pad)
                    out.write(sigma.tobytes())
                    out.write(sigma_pad)
                    out.write(delta.tobytes())
                    out.write(delta_pad)
                    self._bytes_read += self._record_bytes
                else:
                    out.write(empty)
            out.write(meta)
            out.flush()
            os.fsync(out.fileno())
        self._bytes_written += (
            HEADER_SIZE + new_capacity * new_record_bytes + len(meta)
        )

        self._teardown_maps()
        self._file.close()
        os.replace(sibling, self._path)
        self._capacity = new_capacity
        self._file = open(self._path, "r+b")
        self._setup_maps()

    def _read_slot_columns(
        self, slot: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw columns of ``slot`` under the *current* layout (no accounting)."""
        if self._mm is not None:
            return self._dist_view[slot], self._sigma_view[slot], self._delta_view[slot]
        if self._sweep_views is not None:
            dist_buf, sigma_buf, delta_buf = self._sweep_views
            return dist_buf[slot], sigma_buf[slot], delta_buf[slot]
        self._file.seek(self._record_offset(slot))
        payload = self._file.read(self._record_bytes)
        if len(payload) != self._record_bytes:
            raise StoreCorruptedError(
                f"short read for slot {slot}: got {len(payload)} of "
                f"{self._record_bytes} bytes"
            )
        distance_offset, sigma_offset, delta_offset = column_offsets(self._capacity)
        return (
            np.frombuffer(
                payload, DISTANCE_DTYPE, count=self._capacity, offset=distance_offset
            ),
            np.frombuffer(
                payload, SIGMA_DTYPE, count=self._capacity, offset=sigma_offset
            ),
            np.frombuffer(
                payload, DELTA_DTYPE, count=self._capacity, offset=delta_offset
            ),
        )
