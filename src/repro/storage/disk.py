"""Out-of-core betweenness-data store (the paper's "DO" configuration).

The store keeps one binary file containing ``capacity`` fixed-size records,
one per source slot, each laid out columnarly (distances, then shortest-path
counts, then dependencies — Section 5.1).  Records are:

* read sequentially, source by source, during an update sweep;
* peeked at cheaply: the ``dd == 0`` skip needs only the two distances of
  the updated endpoints, which are read directly at their column offsets
  without touching the sigma/delta columns;
* written back *in place*, so processing an update stream never rewrites the
  whole file.

The file is pre-allocated with room for ``capacity`` vertices (and as many
source slots); when the evolving graph outgrows it, the store transparently
rebuilds the file with a larger capacity.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.exceptions import StoreClosedError, StoreCorruptedError
from repro.storage.base import BDStore
from repro.storage.codec import (
    DISTANCE_DTYPE,
    column_offsets,
    decode_record,
    empty_record,
    encode_record,
    record_size,
)
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex

PathLike = Union[str, Path]

#: Default headroom left for future vertices when sizing the file.
DEFAULT_GROWTH_FACTOR = 1.25


class DiskBDStore(BDStore):
    """Columnar on-disk store for ``BD[.]`` records.

    Parameters
    ----------
    vertices:
        Initial vertex set; every vertex receives both a column slot and a
        source record.
    path:
        File to use.  When omitted a temporary file is created and deleted on
        :meth:`close`.
    capacity:
        Number of vertex slots to pre-allocate.  Defaults to the initial
        vertex count padded by ``DEFAULT_GROWTH_FACTOR`` so that a modest
        number of new vertices can arrive without rebuilding the file.
    sources:
        Vertices that are sources of this store.  Defaults to all of
        ``vertices``; a parallel worker restricted to a partition passes its
        partition here while still giving every graph vertex a column slot.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex],
        path: Optional[PathLike] = None,
        capacity: Optional[int] = None,
        sources: Optional[Iterable[Vertex]] = None,
    ) -> None:
        self._index = VertexIndex(vertices)
        # Every vertex gets a column slot; only sources get a meaningful
        # record.  Vertices registered later (e.g. owned by another worker's
        # partition) get a column slot only.
        if sources is None:
            self._source_set = set(self._index.vertices())
        else:
            self._source_set = set(sources)
            unknown = self._source_set - set(self._index.vertices())
            if unknown:
                raise StoreCorruptedError(
                    f"sources {sorted(map(repr, unknown))} are not among the "
                    "store's vertices"
                )
        initial = len(self._index)
        if capacity is None:
            capacity = max(initial, int(initial * DEFAULT_GROWTH_FACTOR), 16)
        if capacity < initial:
            raise StoreCorruptedError(
                f"capacity {capacity} is smaller than the vertex count {initial}"
            )
        self._capacity = capacity

        if path is None:
            handle, tmp_path = tempfile.mkstemp(prefix="repro-bd-", suffix=".bin")
            os.close(handle)
            self._path = Path(tmp_path)
            self._owns_file = True
        else:
            self._path = Path(path)
            self._owns_file = False

        self._file = open(self._path, "w+b")
        self._closed = False
        self._bytes_read = 0
        self._bytes_written = 0
        self._format_file()

    # ------------------------------------------------------------------ #
    # Properties and statistics
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Location of the backing file."""
        return self._path

    @property
    def capacity(self) -> int:
        """Number of vertex slots currently allocated per record."""
        return self._capacity

    @property
    def bytes_read(self) -> int:
        """Total bytes read since creation (I/O accounting for experiments)."""
        return self._bytes_read

    @property
    def bytes_written(self) -> int:
        """Total bytes written since creation."""
        return self._bytes_written

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    def put(self, data: SourceData) -> None:
        self._ensure_open()
        if data.source not in self._index:
            self._register_vertex(data.source)
        self._source_set.add(data.source)
        payload = encode_record(data, self._index, self._capacity)
        self._write_record(self._index.slot(data.source), payload)

    def get(self, source: Vertex) -> SourceData:
        self._ensure_open()
        slot = self._index.slot(source)
        payload = self._read_record(slot)
        return decode_record(payload, source, self._index, self._capacity)

    def endpoint_distances(
        self, source: Vertex, u: Vertex, v: Vertex
    ) -> Tuple[Optional[int], Optional[int]]:
        """Read only the two distance entries needed for the ``dd == 0`` skip."""
        self._ensure_open()
        source_slot = self._index.slot(source)
        base = source_slot * record_size(self._capacity)
        distance_offset, _, _ = column_offsets(self._capacity)
        result = []
        for vertex in (u, v):
            if vertex not in self._index:
                result.append(None)
                continue
            offset = (
                base
                + distance_offset
                + self._index.slot(vertex) * DISTANCE_DTYPE.itemsize
            )
            self._file.seek(offset)
            raw = self._file.read(DISTANCE_DTYPE.itemsize)
            self._bytes_read += len(raw)
            value = int(np.frombuffer(raw, dtype=DISTANCE_DTYPE, count=1)[0])
            result.append(None if value == UNREACHABLE else value)
        return result[0], result[1]

    def add_source(self, source: Vertex) -> None:
        self._ensure_open()
        if source in self._source_set:
            return
        if source not in self._index:
            self._register_vertex(source)
        data = SourceData(source=source)
        data.distance[source] = 0
        data.sigma[source] = 1
        data.delta[source] = 0.0
        self.put(data)

    def register_vertex(self, vertex: Vertex) -> None:
        """Allocate a column slot for ``vertex`` without making it a source."""
        self._ensure_open()
        if vertex not in self._index:
            self._register_vertex(vertex)

    def snapshot(self):
        """Materialise every record; decoding already yields fresh objects,
        so no defensive copy is needed (unlike the in-memory store)."""
        return {source: self.get(source) for source in self.sources()}

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def sources(self) -> Iterator[Vertex]:
        self._ensure_open()
        return iter(
            [v for v in self._index.vertices() if v in self._source_set]
        )

    def __len__(self) -> int:
        return len(self._source_set)

    def __contains__(self, source: Vertex) -> bool:
        return source in self._source_set

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.close()
        if self._owns_file and self._path.exists():
            self._path.unlink()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"disk store at {self._path} has been closed")

    def _format_file(self) -> None:
        """(Re)write the whole file as empty records for the current capacity."""
        empty = empty_record(self._capacity)
        self._file.seek(0)
        self._file.truncate()
        for _ in range(self._capacity):
            self._file.write(empty)
        self._file.flush()
        self._bytes_written += self._capacity * len(empty)
        # Newly formatted records describe "reaches nothing" sources; make the
        # already-registered sources valid records that reach themselves.
        for vertex in [v for v in self._index.vertices() if v in self._source_set]:
            data = SourceData(source=vertex)
            data.distance[vertex] = 0
            data.sigma[vertex] = 1
            data.delta[vertex] = 0.0
            payload = encode_record(data, self._index, self._capacity)
            self._write_record(self._index.slot(vertex), payload)

    def _register_vertex(self, vertex: Vertex) -> None:
        if len(self._index) >= self._capacity:
            self._grow(vertex)
        else:
            self._index.add(vertex)

    def _grow(self, new_vertex: Vertex) -> None:
        """Rebuild the file with a larger capacity to make room for ``new_vertex``."""
        old_records = {
            source: self.get(source) for source in self.sources()
        }
        self._index.add(new_vertex)
        self._capacity = max(
            int(self._capacity * DEFAULT_GROWTH_FACTOR) + 1, len(self._index)
        )
        self._format_file()
        for source, data in old_records.items():
            self.put(data)

    def _read_record(self, slot: int) -> bytes:
        size = record_size(self._capacity)
        self._file.seek(slot * size)
        payload = self._file.read(size)
        self._bytes_read += len(payload)
        if len(payload) != size:
            raise StoreCorruptedError(
                f"short read for slot {slot}: got {len(payload)} of {size} bytes"
            )
        return payload

    def _write_record(self, slot: int, payload: bytes) -> None:
        size = record_size(self._capacity)
        if len(payload) != size:
            raise StoreCorruptedError(
                f"record for slot {slot} has {len(payload)} bytes, expected {size}"
            )
        self._file.seek(slot * size)
        self._file.write(payload)
        self._bytes_written += size
