"""Store URIs and the store factory/registry.

Before the service layer existed, every entry point threaded its own
``store=`` / ``store_path=`` / ``use_mmap=`` kwargs down to whichever
:class:`~repro.storage.base.BDStore` it happened to build — and every new
backend meant another cross-cutting kwarg sweep.  This module replaces that
with one declarative surface: a **store URI** names the backend and its
options, and a **registry** maps URI schemes to factories, so third-party
stores plug in without touching any call site.

Built-in schemes
----------------

``memory://``
    The compute backend's natural in-RAM store: the classic dict-of-records
    :class:`~repro.storage.memory.InMemoryBDStore` under the ``dicts``
    backend, the columnar :class:`~repro.storage.arrays.ArrayBDStore` under
    the ``arrays`` backend (whose kernel repairs records through the column
    protocol the dict store cannot serve).  No query parameters.

``arrays://``
    Always the columnar :class:`~repro.storage.arrays.ArrayBDStore`,
    whichever backend computes over it (it implements the full record
    interface, so the ``dicts`` backend can run on it too).  Query
    parameter: ``shm=true|false`` — place the columns in shared-memory
    segments (the zero-copy data plane) instead of process-private arrays.

``disk://`` / ``disk:///abs/path`` / ``disk:relative/path``
    The durable out-of-core :class:`~repro.storage.disk.DiskBDStore`.
    Without a path a temporary file is used and deleted on close; with a
    path the store is created there (an existing non-empty file is refused,
    exactly like constructing :class:`DiskBDStore` directly).  Query
    parameters: ``mmap=true|false`` (default true) and ``capacity=<int>``
    (pre-allocated vertex slots).

``shard:///root/dir?shards=8&checkpoint_every=4``
    A fault-tolerant *ensemble* of per-shard durable stores plus a
    coordinator manifest under the root directory (see
    :mod:`repro.storage.shard`).  The scheme parses and validates here like
    any other, but it cannot be opened as a single store — it is resolved
    by the shard coordinator under ``executor="shard"`` into per-shard
    ``disk://``-style stores, one per checkpoint round.  The extra
    ``shm=true|false`` parameter turns the coordinator's zero-copy data
    plane on, like ``BetweennessConfig(shared_memory=True)``.

Unknown schemes and unknown/invalid query parameters are rejected with
:class:`~repro.exceptions.ConfigurationError` at parse time, so a typo in a
config file fails before any expensive bootstrap runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import ConfigurationError
from repro.storage.arrays import ArrayBDStore
from repro.storage.base import BDStore
from repro.storage.buffers import shm_available
from repro.storage.disk import DiskBDStore
from repro.storage.memory import InMemoryBDStore
from repro.types import Vertex, validate_backend


@dataclass(frozen=True)
class StoreURI:
    """A parsed, validated store URI.

    ``scheme`` is always lower-case and registered; ``path`` is the
    file-system path carried by the URI (empty for path-less stores);
    ``params`` are the validated query parameters.
    """

    scheme: str
    path: str = ""
    params: Dict[str, str] = field(default_factory=dict)

    def __str__(self) -> str:
        query = "&".join(f"{key}={value}" for key, value in self.params.items())
        # A relative path must render as "scheme:path" — "scheme://path"
        # would put the first segment into the host component, which
        # parse_store_uri (rightly) refuses; keep str() round-trippable.
        if self.path and not self.path.startswith("/"):
            rendered = f"{self.scheme}:{self.path}"
        else:
            rendered = f"{self.scheme}://{self.path}"
        return f"{rendered}?{query}" if query else rendered


@dataclass(frozen=True)
class StoreRequest:
    """Everything a store factory may need to build a concrete store.

    The framework/session layer fills this in from the graph and the
    resolved configuration; a factory reads what it needs and ignores the
    rest (an in-RAM store has no use for ``uri.path``, a path-less one no
    use for ``capacity``).
    """

    uri: StoreURI
    vertices: Tuple[Vertex, ...]
    sources: Optional[Tuple[Vertex, ...]] = None
    directed: bool = False
    backend: str = "dicts"
    #: Caller-side shared-memory intent (``BetweennessConfig.shared_memory``);
    #: combined with the URI's own ``shm`` parameter by the factories.
    shared_memory: bool = False


#: A factory turns a :class:`StoreRequest` into a live store.
StoreFactory = Callable[[StoreRequest], BDStore]


@dataclass(frozen=True)
class _SchemeEntry:
    factory: StoreFactory
    allowed_params: Tuple[str, ...] = ()
    accepts_path: bool = True


_REGISTRY: Dict[str, _SchemeEntry] = {}


def register_store_scheme(
    scheme: str,
    factory: StoreFactory,
    allowed_params: Sequence[str] = (),
    accepts_path: bool = True,
    replace: bool = False,
) -> None:
    """Register ``factory`` to serve store URIs with the given ``scheme``.

    Third-party stores use this to become addressable from
    :class:`~repro.api.BetweennessConfig` (and therefore from config files
    and the CLI) without any changes to the library:

    >>> register_store_scheme("redis", build_redis_store,
    ...                       allowed_params=("db",))   # doctest: +SKIP

    ``allowed_params`` whitelists the query parameters
    :func:`parse_store_uri` accepts for the scheme; anything else is
    rejected with :class:`~repro.exceptions.ConfigurationError`.  Schemes
    are case-insensitive.  Re-registering an existing scheme requires
    ``replace=True`` (guarding against accidental shadowing of built-ins).
    """
    key = scheme.lower()
    if not key or not key.isidentifier():
        raise ConfigurationError(f"invalid store scheme {scheme!r}")
    if key in _REGISTRY and not replace:
        raise ConfigurationError(
            f"store scheme {key!r} is already registered; pass replace=True "
            "to override it"
        )
    _REGISTRY[key] = _SchemeEntry(
        factory=factory,
        allowed_params=tuple(allowed_params),
        accepts_path=accepts_path,
    )


def registered_store_schemes() -> Tuple[str, ...]:
    """The registered URI schemes, sorted (for error messages and docs)."""
    return tuple(sorted(_REGISTRY))


def parse_store_uri(uri: str) -> StoreURI:
    """Parse and validate a store URI against the registry.

    Raises :class:`~repro.exceptions.ConfigurationError` for an unknown
    scheme, an unknown query parameter, a malformed query string, or a path
    handed to a scheme that takes none.
    """
    if not isinstance(uri, str) or not uri.strip():
        raise ConfigurationError(f"store URI must be a non-empty string, got {uri!r}")
    split = urlsplit(uri)
    scheme = split.scheme.lower()
    if not scheme:
        raise ConfigurationError(
            f"store URI {uri!r} has no scheme; expected one of "
            f"{registered_store_schemes()} (e.g. 'memory://' or "
            "'disk:///path/to/bd.bin')"
        )
    entry = _REGISTRY.get(scheme)
    if entry is None:
        raise ConfigurationError(
            f"unknown store scheme {scheme!r} in {uri!r}; registered schemes: "
            f"{registered_store_schemes()}"
        )
    if split.fragment:
        raise ConfigurationError(f"store URI {uri!r} must not carry a fragment")
    # ``disk://bd.bin`` would put "bd.bin" into the netloc and silently
    # lose it; require the unambiguous forms instead.
    if split.netloc:
        raise ConfigurationError(
            f"store URI {uri!r} has a host component {split.netloc!r}; use "
            f"'{scheme}:///absolute/path' or '{scheme}:relative/path'"
        )
    path = split.path
    if path and not entry.accepts_path:
        raise ConfigurationError(
            f"store scheme {scheme!r} does not take a path, got {path!r}"
        )
    params: Dict[str, str] = {}
    if split.query:
        try:
            pairs = parse_qsl(
                split.query, keep_blank_values=True, strict_parsing=True
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed query string in store URI {uri!r}: {exc}"
            ) from exc
        for key, value in pairs:
            if key not in entry.allowed_params:
                raise ConfigurationError(
                    f"unknown query parameter {key!r} for store scheme "
                    f"{scheme!r}; allowed: {entry.allowed_params or '(none)'}"
                )
            if key in params:
                raise ConfigurationError(
                    f"duplicate query parameter {key!r} in store URI {uri!r}"
                )
            params[key] = value
    return StoreURI(scheme=scheme, path=path, params=params)


def create_store(
    uri: str,
    vertices: Sequence[Vertex],
    sources: Optional[Sequence[Vertex]] = None,
    directed: bool = False,
    backend: str = "dicts",
    shared_memory: bool = False,
) -> BDStore:
    """Resolve a store URI into a live :class:`~repro.storage.base.BDStore`.

    This is the single construction path the session layer (and any other
    caller) uses; the ad-hoc ``store=`` / ``store_path=`` kwargs of the
    engine classes remain as the low-level mechanism the resolved store is
    handed to.
    """
    parsed = parse_store_uri(uri)
    request = StoreRequest(
        uri=parsed,
        vertices=tuple(vertices),
        sources=tuple(sources) if sources is not None else None,
        directed=bool(directed),
        backend=validate_backend(backend),
        shared_memory=bool(shared_memory),
    )
    return _REGISTRY[parsed.scheme].factory(request)


# --------------------------------------------------------------------------- #
# Built-in factories
# --------------------------------------------------------------------------- #
def _parse_bool(value: str, key: str, uri: StoreURI) -> bool:
    lowered = value.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise ConfigurationError(
        f"query parameter {key}={value!r} of store URI {uri} is not a "
        "boolean (use true/false)"
    )


def _parse_int(value: str, key: str, uri: StoreURI) -> int:
    try:
        return int(value)
    except ValueError:
        raise ConfigurationError(
            f"query parameter {key}={value!r} of store URI {uri} is not an "
            "integer"
        ) from None


def _effective_shm(request: StoreRequest) -> bool:
    """Combine the request's shared-memory intent with the URI's ``shm``."""
    params = request.uri.params
    param = (
        _parse_bool(params["shm"], "shm", request.uri)
        if "shm" in params
        else None
    )
    if request.shared_memory and param is False:
        raise ConfigurationError(
            f"shared_memory=True contradicts store URI {request.uri} "
            "(which says shm=0); drop one of the two"
        )
    effective = request.shared_memory or bool(param)
    if effective and not shm_available():
        raise ConfigurationError(
            "shared-memory stores need multiprocessing.shared_memory, which "
            "this platform does not provide"
        )
    return effective


def _build_array_store(request: StoreRequest) -> ArrayBDStore:
    row_capacity = len(request.sources if request.sources is not None
                       else request.vertices)
    return ArrayBDStore(
        request.vertices,
        row_capacity=row_capacity,
        directed=request.directed,
        allocator="shm" if _effective_shm(request) else None,
    )


def _build_memory_store(request: StoreRequest) -> BDStore:
    # The arrays kernel repairs records through the column protocol, which
    # the dict store cannot serve — its natural in-RAM store is the
    # columnar one.
    if request.backend == "arrays":
        return _build_array_store(request)
    if request.shared_memory:
        raise ConfigurationError(
            "memory:// resolves to the dict-of-records store under the "
            "dicts backend, which has no columns to place in shared "
            "segments; use store='arrays://' or backend='arrays' with "
            "shared_memory"
        )
    return InMemoryBDStore()


def _build_disk_store(request: StoreRequest) -> DiskBDStore:
    params = request.uri.params
    use_mmap = _parse_bool(params.get("mmap", "true"), "mmap", request.uri)
    capacity = (
        _parse_int(params["capacity"], "capacity", request.uri)
        if "capacity" in params
        else None
    )
    if request.shared_memory and use_mmap:
        raise ConfigurationError(
            "shared_memory only applies to the buffered disk store (the "
            "mmap path already repairs in place); add mmap=false to the "
            f"store URI {request.uri}"
        )
    return DiskBDStore(
        request.vertices,
        path=request.uri.path or None,
        capacity=capacity,
        sources=request.sources,
        use_mmap=use_mmap,
        directed=request.directed,
        sweep_allocator="shm" if request.shared_memory else None,
    )


def _build_shard_store(request: StoreRequest) -> BDStore:
    # A shard URI denotes an *ensemble* of per-shard disk stores plus a
    # coordinator manifest, not one store object — it is resolved by the
    # shard coordinator (executor="shard"), which creates one per-shard
    # durable store per checkpoint round under the root directory.
    raise ConfigurationError(
        f"store URI {request.uri} describes a shard ensemble and cannot be "
        "opened as a single store; run it under executor='shard' "
        "(BetweennessConfig(executor='shard', store='shard:///root?shards=N'))"
    )


register_store_scheme("memory", _build_memory_store, accepts_path=False)
register_store_scheme(
    "arrays", _build_array_store, allowed_params=("shm",), accepts_path=False
)
register_store_scheme(
    "disk", _build_disk_store, allowed_params=("mmap", "capacity")
)
register_store_scheme(
    "shard",
    _build_shard_store,
    allowed_params=("shards", "checkpoint_every", "shm"),
)
