"""On-disk file header and metadata block of the durable ``DO`` store.

A :class:`~repro.storage.disk.DiskBDStore` file is laid out as::

    [ fixed header | capacity x record | metadata block ]
      64 bytes       capacity * record_size(capacity)     meta_size bytes

The fixed header is a little-endian struct holding a magic number, a format
version, the record capacity and the size + CRC32 of the metadata block.
The metadata block (a pickled mapping guarded by the CRC) persists what the
record area cannot express positionally: the vertex index (slot order) and
the source set.  Records therefore remain at stable byte offsets
(``HEADER_SIZE + slot * record_size``) while the metadata — which changes
only when vertices or sources are registered — lives after them and can be
rewritten without shifting any record.

The same magic/version/CRC framing is reused for sidecar files (framework
checkpoints) through :func:`write_sidecar` / :func:`read_sidecar`.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Tuple, Union

from repro.exceptions import StoreCorruptedError, StoreVersionError
from repro.types import Vertex

#: Magic number of a betweenness-data store file ("Repro BD Store").
STORE_MAGIC = b"RBDS"

#: Current on-disk format version.  Bump on any incompatible layout change;
#: :func:`unpack_header` rejects versions it does not understand.
STORE_VERSION = 1

#: ``magic, version, flags, capacity, meta_size, meta_crc`` — packed at the
#: start of the fixed header, zero-padded to :data:`HEADER_SIZE`.
_HEADER_STRUCT = struct.Struct("<4sHHQQI")

#: Size in bytes of the fixed header; records start at this offset.
HEADER_SIZE = 64

#: Header flag bit: the store's records describe a *directed* graph.  A
#: record file carries no orientation of its own (BD records are per-source
#: either way), so this bit is what stops a directed store from being
#: resumed as undirected (or vice versa) and silently misread.
FLAG_DIRECTED = 0x1

#: All header flag bits this build understands; anything else is rejected.
KNOWN_FLAGS = FLAG_DIRECTED


@dataclass
class StoreLayout:
    """Decoded header + metadata of an existing store file."""

    capacity: int
    vertices: List[Vertex]
    sources: List[Vertex]
    #: Bumped on the first record mutation of each store session, so
    #: checkpoints can detect that a store changed after they were written.
    generation: int = 0
    #: Orientation of the graph the records describe (header flag bit).
    directed: bool = False


def pack_header(
    capacity: int, meta_size: int, meta_crc: int, flags: int = 0
) -> bytes:
    """Pack the fixed header (padded to :data:`HEADER_SIZE` bytes)."""
    packed = _HEADER_STRUCT.pack(
        STORE_MAGIC, STORE_VERSION, flags, capacity, meta_size, meta_crc
    )
    return packed.ljust(HEADER_SIZE, b"\x00")


def unpack_header(raw: bytes) -> Tuple[int, int, int, int]:
    """Decode the fixed header; return ``(capacity, meta_size, meta_crc, flags)``."""
    if len(raw) < HEADER_SIZE:
        raise StoreCorruptedError(
            f"file too short for a store header: {len(raw)} of {HEADER_SIZE} bytes"
        )
    magic, version, flags, capacity, meta_size, meta_crc = _HEADER_STRUCT.unpack(
        raw[: _HEADER_STRUCT.size]
    )
    if magic != STORE_MAGIC:
        raise StoreCorruptedError(
            f"bad magic {magic!r}: not a betweenness-data store file"
        )
    if version != STORE_VERSION:
        raise StoreVersionError(
            f"store format version {version} is not supported "
            f"(this build reads version {STORE_VERSION})"
        )
    if flags & ~KNOWN_FLAGS:
        raise StoreVersionError(
            f"store header carries unknown flag bits {flags:#06x} "
            f"(this build understands {KNOWN_FLAGS:#06x})"
        )
    return capacity, meta_size, meta_crc, flags


def encode_metadata(
    vertices: List[Vertex], sources: List[Vertex], generation: int = 0
) -> bytes:
    """Serialise the vertex index (in slot order), source set and generation."""
    return pickle.dumps(
        {
            "vertices": list(vertices),
            "sources": list(sources),
            "generation": generation,
        },
        protocol=4,
    )


def decode_metadata(
    raw: bytes, expected_crc: int
) -> Tuple[List[Vertex], List[Vertex], int]:
    """Deserialise and CRC-check the metadata block."""
    actual_crc = zlib.crc32(raw) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise StoreCorruptedError(
            f"metadata checksum mismatch: header says {expected_crc:#010x}, "
            f"block hashes to {actual_crc:#010x}"
        )
    try:
        payload = pickle.loads(raw)
        vertices = list(payload["vertices"])
        sources = list(payload["sources"])
        generation = int(payload.get("generation", 0))
    except Exception as exc:
        raise StoreCorruptedError(f"undecodable metadata block: {exc!r}") from exc
    return vertices, sources, generation


def metadata_crc(raw: bytes) -> int:
    """CRC32 of a metadata block, as stored in the header."""
    return zlib.crc32(raw) & 0xFFFFFFFF


def read_layout(fileobj, file_size: int, record_size_of) -> StoreLayout:
    """Read and validate the full layout of an existing store file.

    Parameters
    ----------
    fileobj:
        Seekable binary file positioned anywhere.
    file_size:
        Total size of the file in bytes (validated against the header).
    record_size_of:
        Callable mapping a capacity to the per-record byte size (injected to
        keep this module independent of the codec).
    """
    fileobj.seek(0)
    capacity, meta_size, meta_crc, flags = unpack_header(fileobj.read(HEADER_SIZE))
    meta_offset = HEADER_SIZE + capacity * record_size_of(capacity)
    if file_size < meta_offset + meta_size:
        raise StoreCorruptedError(
            f"truncated store file: {file_size} bytes, but the header "
            f"promises records up to byte {meta_offset} plus {meta_size} "
            "bytes of metadata"
        )
    fileobj.seek(meta_offset)
    raw = fileobj.read(meta_size)
    if len(raw) != meta_size:
        raise StoreCorruptedError(
            f"short metadata read: got {len(raw)} of {meta_size} bytes"
        )
    vertices, sources, generation = decode_metadata(raw, meta_crc)
    if len(vertices) > capacity:
        raise StoreCorruptedError(
            f"metadata lists {len(vertices)} vertices but capacity is {capacity}"
        )
    unknown = set(sources) - set(vertices)
    if unknown:
        raise StoreCorruptedError(
            f"metadata lists sources outside the vertex index: {sorted(map(repr, unknown))}"
        )
    return StoreLayout(
        capacity=capacity,
        vertices=vertices,
        sources=sources,
        generation=generation,
        directed=bool(flags & FLAG_DIRECTED),
    )


# --------------------------------------------------------------------------- #
# Sidecar files (framework checkpoints)
# --------------------------------------------------------------------------- #
def write_sidecar(path: Union[str, Path], magic: bytes, payload: Any) -> None:
    """Write ``payload`` to ``path`` with the store's magic/version/CRC framing."""
    raw = pickle.dumps(payload, protocol=4)
    header = struct.pack("<4sHHQI", magic, STORE_VERSION, 0, len(raw), metadata_crc(raw))
    Path(path).write_bytes(header + raw)


def read_sidecar(path: Union[str, Path], magic: bytes) -> Any:
    """Read a sidecar previously written by :func:`write_sidecar`."""
    raw = Path(path).read_bytes()
    header_size = struct.calcsize("<4sHHQI")
    if len(raw) < header_size:
        raise StoreCorruptedError(f"file {path} is too short to be a sidecar")
    file_magic, version, _flags, size, crc = struct.unpack(
        "<4sHHQI", raw[:header_size]
    )
    if file_magic != magic:
        raise StoreCorruptedError(
            f"bad magic {file_magic!r} in {path} (expected {magic!r})"
        )
    if version != STORE_VERSION:
        raise StoreVersionError(
            f"sidecar {path} has version {version}, expected {STORE_VERSION}"
        )
    body = raw[header_size : header_size + size]
    if len(body) != size or metadata_crc(body) != crc:
        raise StoreCorruptedError(f"sidecar {path} is truncated or corrupted")
    return pickle.loads(body)
