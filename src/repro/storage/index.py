"""Bidirectional mapping between vertices and dense integer slots.

The on-disk layout of Section 5.1 avoids storing vertex identifiers by
relying on position: the ``i``-th entry of each column belongs to the vertex
with slot ``i``.  :class:`VertexIndex` provides that mapping and grows as
new vertices arrive in the stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.exceptions import VertexNotFoundError
from repro.types import Vertex


class VertexIndex:
    """Assign dense, stable integer slots to vertices."""

    def __init__(self, vertices: Iterable[Vertex] = ()) -> None:
        self._slot_of: Dict[Vertex, int] = {}
        self._vertex_of: List[Vertex] = []
        for vertex in vertices:
            self.add(vertex)

    def add(self, vertex: Vertex) -> int:
        """Register ``vertex`` (idempotent) and return its slot."""
        slot = self._slot_of.get(vertex)
        if slot is not None:
            return slot
        slot = len(self._vertex_of)
        self._slot_of[vertex] = slot
        self._vertex_of.append(vertex)
        return slot

    def slot(self, vertex: Vertex) -> int:
        """Return the slot of ``vertex`` (raises if unknown)."""
        try:
            return self._slot_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex(self, slot: int) -> Vertex:
        """Return the vertex stored at ``slot``."""
        if not 0 <= slot < len(self._vertex_of):
            raise IndexError(f"slot {slot} out of range (size {len(self._vertex_of)})")
        return self._vertex_of[slot]

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._slot_of

    def __len__(self) -> int:
        return len(self._vertex_of)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertex_of)

    def vertices(self) -> List[Vertex]:
        """All indexed vertices, in slot order."""
        return list(self._vertex_of)
