"""In-memory betweenness-data store (the paper's "MO" configuration)."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.algorithms.brandes import SourceData
from repro.exceptions import StoreClosedError
from repro.storage.base import BDStore
from repro.types import Vertex


class InMemoryBDStore(BDStore):
    """Keep every ``BD[s]`` record as live Python dictionaries in memory.

    This is the fastest configuration and the natural choice whenever the
    O(n^2) working set fits in RAM.  Records are shared by reference:
    :meth:`get` hands out the stored object and the caller's in-place repairs
    are immediately visible, so :meth:`put` after an update is effectively a
    no-op kept for interface symmetry with the disk store.
    """

    def __init__(self) -> None:
        self._records: Dict[Vertex, SourceData] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    def put(self, data: SourceData) -> None:
        self._ensure_open()
        self._records[data.source] = data

    def get(self, source: Vertex) -> SourceData:
        self._ensure_open()
        return self._records[source]

    def endpoint_distances(
        self, source: Vertex, u: Vertex, v: Vertex
    ) -> Tuple[Optional[int], Optional[int]]:
        self._ensure_open()
        record = self._records[source]
        return record.distance.get(u), record.distance.get(v)

    def add_source(self, source: Vertex) -> None:
        self._ensure_open()
        if source in self._records:
            return
        data = SourceData(source=source)
        data.distance[source] = 0
        data.sigma[source] = 1
        data.delta[source] = 0.0
        self._records[source] = data

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def sources(self) -> Iterator[Vertex]:
        self._ensure_open()
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, source: Vertex) -> bool:
        return source in self._records

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        self._records.clear()

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the in-memory store has been closed")
