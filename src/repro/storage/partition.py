"""Partitioning of the source set across parallel workers.

Section 5.2 of the paper distributes the ``BD[.]`` data structure evenly over
``p`` shared-nothing machines: each machine owns a contiguous range of
roughly ``n/p`` sources, processes updates for those sources independently,
and the partial betweenness scores are summed at the end (the reduce step of
Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import PartitionError
from repro.types import Vertex


@dataclass(frozen=True)
class SourcePartition:
    """A contiguous range of sources assigned to one worker.

    ``worker_id`` identifies the mapper; ``sources`` is the tuple of source
    vertices it is responsible for (kept explicit rather than as an index
    range so partitions remain valid if the caller reorders vertices).
    """

    worker_id: int
    sources: tuple

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)


def partition_sources(
    sources: Sequence[Vertex], num_workers: int
) -> List[SourcePartition]:
    """Split ``sources`` into ``num_workers`` balanced contiguous partitions.

    The first ``len(sources) % num_workers`` partitions receive one extra
    source, so sizes differ by at most one.  Empty partitions are allowed
    when there are more workers than sources (they simply do no work), which
    keeps weak-scaling experiments simple.
    """
    if num_workers < 1:
        raise PartitionError(f"num_workers must be >= 1, got {num_workers}")
    total = len(sources)
    base_size, remainder = divmod(total, num_workers)
    partitions: List[SourcePartition] = []
    start = 0
    for worker_id in range(num_workers):
        size = base_size + (1 if worker_id < remainder else 0)
        chunk = tuple(sources[start : start + size])
        partitions.append(SourcePartition(worker_id=worker_id, sources=chunk))
        start += size
    return partitions
