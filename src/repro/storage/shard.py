"""On-disk layout and manifest of a sharded betweenness deployment.

A ``shard://`` store URI describes a fault-tolerant *ensemble* of per-shard
durable stores rather than one store::

    shard:///var/data/bc?shards=8&checkpoint_every=4

The path is the **shard root** directory.  Inside it, each shard owns a
deterministic per-shard directory with its durable record store and its
checkpoint sidecar, and the coordinator owns one manifest:

.. code-block:: text

    <root>/
        manifest.bin                # coordinator state (atomic replace)
        shard-0000/
            checkpoint.bin          # FrameworkCheckpoint sidecar (commit point)
            store-00000012.bin      # DiskBDStore stamped with the batch cursor
        shard-0001/
            ...

A checkpoint *round* writes, per shard, a fresh cursor-stamped store file
first and then atomically replaces ``checkpoint.bin`` — the sidecar rename
is the commit point, so a crash mid-round leaves the previous round intact.
The manifest is updated (atomically, last) once every shard committed; its
``batch_cursor`` is the coordinator's authority on how many batches the
ensemble durably applied.

This module is pure layout + bookkeeping: paths, the manifest codec, URI
resolution and the deterministic rebalancing rule.  The process machinery
lives in :mod:`repro.parallel.shards`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError, StoreCorruptedError
from repro.storage.factory import parse_store_uri
from repro.storage.header import read_sidecar, write_sidecar
from repro.types import Vertex

PathLike = Union[str, Path]

#: Magic number of a shard-coordinator manifest ("Repro Betweenness Shard Manifest").
MANIFEST_MAGIC = b"RBSM"

#: File name of the coordinator manifest inside the shard root.
MANIFEST_FILENAME = "manifest.bin"

#: Checkpoint cadence (batches per round) when the URI does not set one.
DEFAULT_CHECKPOINT_EVERY = 4


def pick_shard(shard_sizes: Sequence[int]) -> int:
    """Deterministic rebalancing rule for stream-born vertices.

    The new vertex goes to the least-loaded shard; ties break to the lowest
    shard id.  Because the inputs are the per-shard source counts — which
    are persisted in the manifest and rebuilt identically by replay — the
    assignment is a pure function of the update history and therefore
    survives coordinator restarts, unlike the driver-local round-robin
    counter it replaces.
    """
    if not shard_sizes:
        raise ConfigurationError("pick_shard needs at least one shard")
    return min(range(len(shard_sizes)), key=lambda i: (shard_sizes[i], i))


@dataclass
class ShardManifest:
    """Coordinator state persisted at every checkpoint round."""

    num_shards: int
    checkpoint_every: int
    backend: str
    directed: bool
    batch_cursor: int
    #: ``[(vertex, shard_id), ...]`` for stream-born vertices, in birth order.
    assignment: List = field(default_factory=list)
    #: Current number of sources owned by each shard (initial partition plus
    #: adoptions) — the state :func:`pick_shard` is a function of.
    shard_sizes: List[int] = field(default_factory=list)
    #: The ``BetweennessConfig.to_dict()`` of the owning session, when one
    #: drove the coordinator; lets ``resume_session`` restore a sharded
    #: session from nothing but the shard root.
    config: Optional[Dict] = None

    def assignment_map(self) -> Dict[Vertex, int]:
        """The stream-born assignment as a dict (vertex → shard id)."""
        return {vertex: shard for vertex, shard in self.assignment}


@dataclass(frozen=True)
class ShardLayout:
    """Resolved description of a shard ensemble's disk layout."""

    root: Path
    num_shards: int
    checkpoint_every: int

    @classmethod
    def from_uri(cls, uri: str, workers: Optional[int] = None) -> "ShardLayout":
        """Resolve a ``shard://`` URI (cross-validated against ``workers``).

        The ``shards`` query parameter is authoritative when present; a
        ``workers`` count other than 1 must agree with it.  Without the
        parameter the shard count is ``workers`` (default 1).
        """
        parsed = parse_store_uri(uri)
        if parsed.scheme != "shard":
            raise ConfigurationError(
                f"not a shard:// URI: {uri!r} (scheme {parsed.scheme!r})"
            )
        if not parsed.path:
            raise ConfigurationError(
                f"shard URI {uri!r} must name a root directory, e.g. "
                "'shard:///var/data/bc?shards=8'"
            )
        num_shards = _positive_int(parsed.params, "shards", uri, default=None)
        if num_shards is None:
            num_shards = workers if workers is not None else 1
        elif workers not in (None, 1, num_shards):
            raise ConfigurationError(
                f"shard URI {uri!r} declares shards={num_shards} but the "
                f"configuration asks for workers={workers}; drop one or make "
                "them agree"
            )
        checkpoint_every = _positive_int(
            parsed.params, "checkpoint_every", uri, default=DEFAULT_CHECKPOINT_EVERY
        )
        return cls(
            root=Path(parsed.path),
            num_shards=num_shards,
            checkpoint_every=checkpoint_every,
        )

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_FILENAME

    def shard_dir(self, shard_id: int) -> Path:
        return self.root / f"shard-{shard_id:04d}"

    def checkpoint_path(self, shard_id: int) -> Path:
        return self.shard_dir(shard_id) / "checkpoint.bin"

    def store_path(self, shard_id: int, batch_cursor: int) -> Path:
        return self.shard_dir(shard_id) / store_filename(batch_cursor)

    @staticmethod
    def is_shard_root(path: PathLike) -> bool:
        """Whether ``path`` is (or directly names) a shard-root manifest."""
        path = Path(path)
        if path.is_dir():
            return (path / MANIFEST_FILENAME).exists()
        return path.name == MANIFEST_FILENAME and path.exists()

    # ------------------------------------------------------------------ #
    # Manifest IO
    # ------------------------------------------------------------------ #
    def write_manifest(self, manifest: ShardManifest) -> Path:
        """Atomically persist the coordinator state (write-temp + rename)."""
        payload = {
            "num_shards": manifest.num_shards,
            "checkpoint_every": manifest.checkpoint_every,
            "backend": manifest.backend,
            "directed": manifest.directed,
            "batch_cursor": manifest.batch_cursor,
            "assignment": list(manifest.assignment),
            "shard_sizes": list(manifest.shard_sizes),
            "config": manifest.config,
        }
        path = self.manifest_path
        tmp = path.with_name(path.name + ".tmp")
        write_sidecar(tmp, MANIFEST_MAGIC, payload)
        os.replace(tmp, path)
        return path

    def read_manifest(self) -> ShardManifest:
        """Load the manifest (CRC-validated) and check it fits this layout."""
        path = self.manifest_path
        manifest = load_manifest(self.root)
        if manifest.num_shards != self.num_shards:
            raise ConfigurationError(
                f"shard root {self.root} holds {manifest.num_shards} shards "
                f"but the layout asked for {self.num_shards}; resharding is "
                "not supported — resume with the original shard count"
            )
        if len(manifest.shard_sizes) != manifest.num_shards:
            raise StoreCorruptedError(
                f"manifest {path} records {len(manifest.shard_sizes)} shard "
                f"sizes for {manifest.num_shards} shards"
            )
        return manifest


def load_manifest(root: PathLike) -> ShardManifest:
    """Load a shard root's manifest without assuming a shard count.

    This is the discovery path of ``ShardCoordinator.resume`` /
    ``resume_session``: the manifest itself is the authority on how many
    shards the ensemble has and how often it checkpoints.
    """
    path = Path(root) / MANIFEST_FILENAME
    if not path.exists():
        raise ConfigurationError(
            f"{root} is not a shard root: no {MANIFEST_FILENAME} "
            "(was the ensemble ever checkpointed?)"
        )
    payload = read_sidecar(path, MANIFEST_MAGIC)
    return ShardManifest(
        num_shards=int(payload["num_shards"]),
        checkpoint_every=int(payload["checkpoint_every"]),
        backend=payload["backend"],
        directed=bool(payload["directed"]),
        batch_cursor=int(payload["batch_cursor"]),
        assignment=list(payload["assignment"]),
        shard_sizes=list(payload["shard_sizes"]),
        config=payload.get("config"),
    )


def store_filename(batch_cursor: int) -> str:
    """Name of a shard's durable store stamped with its batch cursor."""
    return f"store-{batch_cursor:08d}.bin"


def prune_stale_stores(shard_dir: PathLike, keep_cursor: int) -> None:
    """Delete store files from rounds older than ``keep_cursor``.

    Called by a worker only after its new sidecar has been committed (the
    atomic rename), so the referenced store file is never the one removed.
    """
    keep = store_filename(keep_cursor)
    for candidate in Path(shard_dir).glob("store-*.bin"):
        if candidate.name != keep:
            candidate.unlink(missing_ok=True)


def _positive_int(
    params: Dict[str, str], key: str, uri: str, default: Optional[int]
) -> Optional[int]:
    if key not in params:
        return default
    try:
        value = int(params[key])
    except ValueError:
        raise ConfigurationError(
            f"query parameter {key}={params[key]!r} of shard URI {uri!r} is "
            "not an integer"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"query parameter {key}={value} of shard URI {uri!r} must be >= 1"
        )
    return value
