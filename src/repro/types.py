"""Shared type aliases and constants used across the library."""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

#: Vertices may be any hashable object (integers, strings, tuples, ...).
Vertex = Hashable

#: An undirected edge is canonically represented as a sorted 2-tuple so that
#: ``(u, v)`` and ``(v, u)`` map to the same key in score dictionaries.
Edge = Tuple[Vertex, Vertex]

#: Mapping from vertex to its betweenness centrality score.
VertexScores = Dict[Vertex, float]

#: Mapping from (canonical) edge to its betweenness centrality score.
EdgeScores = Dict[Edge, float]

#: Sentinel distance used for vertices that are unreachable from a source.
#: The on-disk format stores distances as signed 16-bit integers, hence -1.
UNREACHABLE: int = -1

#: Compute backends understood across the library: label-keyed Python dicts
#: (the original implementation) or the array-native kernel over
#: slot-indexed columns (bit-identical scores, vectorized bootstrap).
BACKENDS: Tuple[str, str] = ("dicts", "arrays")


def validate_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged.

    Shared by every entry point that accepts the switch (framework,
    Brandes, the parallel drivers) so the accepted values and the error
    message stay in one place.
    """
    if backend not in BACKENDS:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (order-independent) representation of an edge.

    The two endpoints are sorted by ``repr`` when they are not directly
    comparable (e.g. mixed ``int`` and ``str`` vertices), which keeps the
    canonical form deterministic for any hashable vertex type.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)
