"""Small shared utilities (timing, statistics, validation, RNG helpers)."""

from repro.utils.rng import ensure_rng
from repro.utils.stats import (
    SummaryStats,
    empirical_cdf,
    geometric_mean,
    median,
    percentile,
    summarize,
)
from repro.utils.timing import Timer, timed

__all__ = [
    "ensure_rng",
    "SummaryStats",
    "empirical_cdf",
    "geometric_mean",
    "median",
    "percentile",
    "summarize",
    "Timer",
    "timed",
]
