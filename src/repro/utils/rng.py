"""Helpers for deterministic random number generation.

Every stochastic component in the library (graph generators, update-stream
generators, sampling-based approximations) accepts either a seed or an
existing :class:`random.Random` instance, and funnels it through
:func:`ensure_rng` so that experiments are reproducible end to end.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RandomLike = Union[int, random.Random, None]


def ensure_rng(seed: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a fresh non-deterministic generator, an ``int`` seed for
        a deterministic generator, or an existing :class:`random.Random`
        instance which is returned unchanged (useful to share one stream
        across several components).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent stream, so a single top-level seed
    still yields a fully deterministic experiment even when sub-components
    consume a varying number of random draws.
    """
    return random.Random(rng.getrandbits(64))
