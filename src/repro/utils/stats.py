"""Descriptive statistics used by the analysis and benchmark harness.

The paper reports speedups as cumulative distribution functions (Figures 5
and 6) and as min / median / max summaries (Table 4).  These helpers produce
exactly those artefacts from a list of per-edge measurements.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def top_k_items(items: Iterable[Tuple[object, float]], k: int) -> List[Tuple[object, float]]:
    """The ``k`` best-ranked ``(element, score)`` pairs.

    Ranking order is descending score with ties broken by ``repr`` of the
    element (the historical full-sort order of the top-k monitor, kept so
    rankings stay deterministic for any hashable element type).  Selection
    runs through ``heapq``'s bounded-heap machinery — O(n log k) instead of
    an O(n log n) full sort.  Shared by the session facade's ``top_k()``
    and the top-k subscriber.
    """
    # nsmallest under the (-score, repr) key IS nlargest under the ranking
    # order; heapq has no key-inverted nlargest for the string tie-break.
    return heapq.nsmallest(k, items, key=lambda item: (-item[1], repr(item[0])))


def median(values: Sequence[float]) -> float:
    """Return the median of ``values`` (average of middle two for even n)."""
    if not values:
        raise ValueError("median() of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0 <= q <= 100) by linear interpolation."""
    if not values:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[int(rank)])
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def geometric_mean(values: Sequence[float]) -> float:
    """Return the geometric mean of strictly positive ``values``."""
    if not values:
        raise ValueError("geometric_mean() of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF of ``values`` as ``(value, F(value))`` pairs.

    The result is sorted by value; the fraction is the proportion of samples
    less than or equal to the value, which matches the CDF plots in the
    paper's Figures 5 and 6.
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(float(v), (i + 1) / n) for i, v in enumerate(ordered)]


@dataclass(frozen=True)
class SummaryStats:
    """Min / median / mean / max / count summary of a sample."""

    count: int
    minimum: float
    median: float
    mean: float
    maximum: float

    def as_row(self) -> Tuple[float, float, float]:
        """Return the ``(min, median, max)`` triple used in Table 4."""
        return (self.minimum, self.median, self.maximum)


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for ``values``."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("summarize() of an empty sequence")
    return SummaryStats(
        count=len(data),
        minimum=min(data),
        median=median(data),
        mean=sum(data) / len(data),
        maximum=max(data),
    )
