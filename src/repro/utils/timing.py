"""Lightweight timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A single :class:`Timer` can time many intervals; it records each lap so
    callers can later inspect the distribution (used for per-edge update
    timings in the speedup experiments).
    """

    laps: List[float] = field(default_factory=list)
    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("timer is already running")
        self._started_at = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        """Stop the current lap and return its duration in seconds."""
        if not self._running:
            raise RuntimeError("timer is not running")
        elapsed = time.perf_counter() - self._started_at
        self.laps.append(elapsed)
        self._running = False
        return elapsed

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager that times the enclosed block as one lap."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    @property
    def total(self) -> float:
        """Total time across all laps, in seconds."""
        return sum(self.laps)

    @property
    def count(self) -> int:
        """Number of recorded laps."""
        return len(self.laps)

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 when no lap was recorded)."""
        return self.total / self.count if self.laps else 0.0

    def reset(self) -> None:
        """Forget all recorded laps."""
        self.laps.clear()
        self._running = False


def timed(func: Callable[..., T], *args: object, **kwargs: object) -> Tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
