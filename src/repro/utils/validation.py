"""Argument-validation helpers shared by the public API."""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError


def require_positive(name: str, value: float) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` is > 0."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` is >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` is in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_in_range(
    name: str, value: float, low: Optional[float] = None, high: Optional[float] = None
) -> float:
    """Raise :class:`ConfigurationError` unless ``low <= value <= high``."""
    if low is not None and value < low:
        raise ConfigurationError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ConfigurationError(f"{name} must be <= {high}, got {value!r}")
    return value
