"""Test suite package.

Making ``tests`` a package lets the shared helpers in
:mod:`tests.helpers` be imported with absolute imports under any pytest
rootdir, which is what broke collection when test modules used relative
``from .conftest import ...`` imports.
"""
