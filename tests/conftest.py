"""Shared fixtures for the test suite.

Plain (non-fixture) helpers live in :mod:`tests.helpers`; import them from
there, never from this module.
"""

from __future__ import annotations

import pytest

from repro.graph import Graph
from repro.storage.buffers import active_segments


@pytest.fixture(autouse=True)
def shm_leak_guard():
    """Suite-wide guard: no test may leak a ``repro_*`` /dev/shm segment.

    Every shared-memory segment the data plane creates carries the
    ``repro_`` prefix, so a post-test scan catching a new name means an
    owner forgot to release (or a crash-reclaim path failed).  Segments
    that predate the test (e.g. owned by an outer process) are tolerated.
    """
    before = set(active_segments())
    yield
    leaked = sorted(set(active_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture
def path5() -> Graph:
    """Path graph 0-1-2-3-4."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def cycle6() -> Graph:
    """Cycle graph on 6 vertices."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])


@pytest.fixture
def star_graph5() -> Graph:
    """Star with center 0 and 5 leaves."""
    return Graph.from_edges([(0, i) for i in range(1, 6)])


@pytest.fixture
def two_triangles_bridge() -> Graph:
    """Two triangles joined by a single bridge edge (2, 3).

    The bridge has the maximum edge betweenness and its endpoints the
    maximum vertex betweenness — a canonical "weak tie" configuration.
    """
    return Graph.from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two separate components: a triangle and a path."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2), (10, 11), (11, 12)])
