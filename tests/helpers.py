"""Assertion helpers and graph builders shared across test modules.

Import from here (``from tests.helpers import ...``) rather than from
``conftest`` — conftest modules are loaded by pytest for fixtures and are
not importable under rootdir collection.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.algorithms import brandes_betweenness
from repro.core.framework import IncrementalBetweenness
from repro.graph import Graph

TOLERANCE = 1e-8


def random_connected_graph(n: int, extra_edge_probability: float, seed: int) -> Graph:
    """Random connected graph: a random spanning tree plus random extra edges."""
    rng = random.Random(seed)
    graph = Graph()
    graph.add_vertex(0)
    for vertex in range(1, n):
        graph.add_edge(vertex, rng.randrange(vertex))
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < extra_edge_probability:
                graph.add_edge(u, v)
    return graph


def random_graph(n: int, edge_probability: float, seed: int) -> Graph:
    """Plain G(n, p) random graph (possibly disconnected)."""
    rng = random.Random(seed)
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def assert_scores_equal(actual: Dict, expected: Dict, tolerance: float = TOLERANCE, label: str = "") -> None:
    """Assert two score dictionaries agree on every key within ``tolerance``.

    Keys missing from one side are treated as 0.0, which matches the
    semantics of betweenness scores (absent = never on a shortest path).
    """
    for key in set(actual) | set(expected):
        a = actual.get(key, 0.0)
        e = expected.get(key, 0.0)
        assert abs(a - e) <= tolerance, f"{label} score mismatch for {key!r}: {a} != {e}"


def assert_framework_matches_recompute(
    framework: IncrementalBetweenness, tolerance: float = TOLERANCE
) -> None:
    """Assert a framework's scores and stored BD match a fresh Brandes run."""
    reference = brandes_betweenness(
        framework.graph, keep_predecessors=False, collect_source_data=True
    )
    assert_scores_equal(
        framework.vertex_betweenness(), reference.vertex_scores, tolerance, "vertex"
    )
    assert_scores_equal(
        framework.edge_betweenness(), reference.edge_scores, tolerance, "edge"
    )
    for source, expected in reference.source_data.items():
        stored = framework.store.get(source)
        assert stored.distance == expected.distance, f"distance mismatch for source {source!r}"
        assert stored.sigma == expected.sigma, f"sigma mismatch for source {source!r}"
        assert_scores_equal(stored.delta, expected.delta, tolerance, f"delta[{source!r}]")


def graphs_equal(a: Graph, b: Graph) -> bool:
    """Structural equality of two graphs (same vertices and edges)."""
    if set(a.vertices()) != set(b.vertices()):
        return False
    return set(a.edges()) == set(b.edges())
