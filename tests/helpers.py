"""Assertion helpers shared across test modules."""

from __future__ import annotations

from typing import Dict

from repro.algorithms import brandes_betweenness
from repro.core.framework import IncrementalBetweenness
from repro.graph import Graph

TOLERANCE = 1e-8


def assert_scores_equal(actual: Dict, expected: Dict, tolerance: float = TOLERANCE, label: str = "") -> None:
    """Assert two score dictionaries agree on every key within ``tolerance``.

    Keys missing from one side are treated as 0.0, which matches the
    semantics of betweenness scores (absent = never on a shortest path).
    """
    for key in set(actual) | set(expected):
        a = actual.get(key, 0.0)
        e = expected.get(key, 0.0)
        assert abs(a - e) <= tolerance, f"{label} score mismatch for {key!r}: {a} != {e}"


def assert_framework_matches_recompute(
    framework: IncrementalBetweenness, tolerance: float = TOLERANCE
) -> None:
    """Assert a framework's scores and stored BD match a fresh Brandes run."""
    reference = brandes_betweenness(
        framework.graph, keep_predecessors=False, collect_source_data=True
    )
    assert_scores_equal(
        framework.vertex_betweenness(), reference.vertex_scores, tolerance, "vertex"
    )
    assert_scores_equal(
        framework.edge_betweenness(), reference.edge_scores, tolerance, "edge"
    )
    for source, expected in reference.source_data.items():
        stored = framework.store.get(source)
        assert stored.distance == expected.distance, f"distance mismatch for source {source!r}"
        assert stored.sigma == expected.sigma, f"sigma mismatch for source {source!r}"
        assert_scores_equal(stored.delta, expected.delta, tolerance, f"delta[{source!r}]")


def graphs_equal(a: Graph, b: Graph) -> bool:
    """Structural equality of two graphs (same vertices and edges)."""
    if set(a.vertices()) != set(b.vertices()):
        return False
    return set(a.edges()) == set(b.edges())
