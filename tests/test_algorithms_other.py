"""Tests for the approximation, brute-force oracle and recompute baseline."""

import pytest

from repro.algorithms import (
    RecomputeBetweenness,
    approximate_betweenness,
    brandes_betweenness,
    brute_force_betweenness,
)
from repro.exceptions import ConfigurationError, UpdateError
from repro.generators import complete_graph, star_graph

from tests.helpers import random_connected_graph
from tests.helpers import assert_scores_equal


class TestBruteForce:
    def test_star_graph(self):
        vertex_scores, edge_scores = brute_force_betweenness(star_graph(4))
        assert vertex_scores[0] == pytest.approx(12.0)
        assert edge_scores[(0, 1)] == pytest.approx(8.0)

    def test_empty_graph(self):
        from repro.graph import Graph

        vertex_scores, edge_scores = brute_force_betweenness(Graph())
        assert vertex_scores == {} and edge_scores == {}


class TestApproximateBetweenness:
    def test_full_sampling_is_exact(self):
        graph = random_connected_graph(12, 0.2, seed=5)
        exact = brandes_betweenness(graph)
        approx_vertex, approx_edge = approximate_betweenness(
            graph, num_sources=graph.num_vertices, rng=0
        )
        assert_scores_equal(approx_vertex, exact.vertex_scores)
        assert_scores_equal(approx_edge, exact.edge_scores)

    def test_partial_sampling_reasonable_on_star(self):
        graph = star_graph(20)
        approx_vertex, _ = approximate_betweenness(graph, num_sources=10, rng=1)
        exact_center = 20 * 19
        assert approx_vertex[0] == pytest.approx(exact_center, rel=0.35)

    def test_invalid_sample_size(self):
        graph = complete_graph(4)
        with pytest.raises(ConfigurationError):
            approximate_betweenness(graph, num_sources=0)
        with pytest.raises(ConfigurationError):
            approximate_betweenness(graph, num_sources=5)

    def test_edges_can_be_skipped(self):
        graph = complete_graph(4)
        _, edge_scores = approximate_betweenness(
            graph, num_sources=2, rng=2, include_edges=False
        )
        assert edge_scores is None

    def test_empty_graph(self):
        from repro.graph import Graph

        vertex_scores, edge_scores = approximate_betweenness(Graph(), num_sources=1)
        assert vertex_scores == {} and edge_scores == {}


class TestRecomputeBaseline:
    def test_tracks_additions(self, path5):
        baseline = RecomputeBetweenness(path5)
        baseline.add_edge(0, 4)
        reference = brandes_betweenness(baseline.graph)
        assert_scores_equal(baseline.vertex_betweenness(), reference.vertex_scores)
        assert_scores_equal(baseline.edge_betweenness(), reference.edge_scores)

    def test_tracks_removals(self, cycle6):
        baseline = RecomputeBetweenness(cycle6)
        baseline.remove_edge(0, 1)
        reference = brandes_betweenness(baseline.graph)
        assert_scores_equal(baseline.vertex_betweenness(), reference.vertex_scores)

    def test_duplicate_addition_rejected(self, path5):
        baseline = RecomputeBetweenness(path5)
        with pytest.raises(UpdateError):
            baseline.add_edge(0, 1)

    def test_missing_removal_rejected(self, path5):
        baseline = RecomputeBetweenness(path5)
        with pytest.raises(UpdateError):
            baseline.remove_edge(0, 4)

    def test_original_graph_not_mutated(self, path5):
        baseline = RecomputeBetweenness(path5)
        baseline.add_edge(0, 4)
        assert not path5.has_edge(0, 4)

    def test_single_scores(self, star_graph5):
        baseline = RecomputeBetweenness(star_graph5)
        assert baseline.vertex_score(0) == pytest.approx(20.0)
        # Edge (0, 1) carries the pair (0, 1) itself plus (1, t) for the four
        # other leaves, in both directions: 2 + 8 = 10.
        assert baseline.edge_score(0, 1) == pytest.approx(10.0)
