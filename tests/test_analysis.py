"""Tests for the speedup-measurement harness and table formatting."""

import pytest

from repro.analysis import (
    SpeedupSeries,
    Variant,
    build_framework,
    format_table,
    measure_brandes_seconds,
    measure_stream_speedups,
    related_work_table,
    speedup_summary_rows,
    table2_rows,
)
from repro.core import IncrementalBetweenness
from repro.exceptions import ConfigurationError
from repro.generators import addition_stream, removal_stream, synthetic_social_graph
from repro.graph import profile

from tests.helpers import assert_framework_matches_recompute


@pytest.fixture(scope="module")
def small_social_graph():
    return synthetic_social_graph(60, rng=13)


class TestBuildFramework:
    def test_mo_variant_default(self, small_social_graph):
        framework = build_framework(small_social_graph, Variant.MO)
        assert isinstance(framework, IncrementalBetweenness)

    def test_do_variant_uses_disk(self, small_social_graph, tmp_path):
        framework = build_framework(
            small_social_graph, Variant.DO, disk_path=tmp_path / "bd.bin"
        )
        assert framework.store.path.exists()
        framework.store.close()

    def test_mp_variant_tracks_predecessors(self, small_social_graph):
        framework = build_framework(small_social_graph, Variant.MP)
        assert framework._maintain_predecessors is True


class TestMeasureBrandes:
    def test_positive_time(self, small_social_graph):
        assert measure_brandes_seconds(small_social_graph) > 0.0

    def test_invalid_repeats(self, small_social_graph):
        with pytest.raises(ConfigurationError):
            measure_brandes_seconds(small_social_graph, repeats=0)


class TestMeasureStreamSpeedups:
    def test_series_has_one_entry_per_update(self, small_social_graph):
        updates = addition_stream(small_social_graph, 4, rng=3)
        series = measure_stream_speedups(
            small_social_graph, updates, Variant.MO, label="social"
        )
        assert len(series.speedups) == 4
        assert len(series.update_seconds) == 4
        assert all(s > 0 for s in series.speedups)
        assert 0.0 <= series.average_skip_fraction <= 1.0

    def test_cdf_and_summary(self, small_social_graph):
        updates = removal_stream(small_social_graph, 4, rng=4)
        series = measure_stream_speedups(
            small_social_graph, updates, Variant.MO, label="social"
        )
        cdf = series.cdf()
        assert cdf[-1][1] == pytest.approx(1.0)
        stats = series.summary()
        assert stats.minimum <= stats.median <= stats.maximum

    def test_framework_correct_after_measurement(self, small_social_graph):
        updates = addition_stream(small_social_graph, 2, rng=5)
        framework = build_framework(small_social_graph, Variant.MO)
        for update in updates:
            framework.apply(update)
        assert_framework_matches_recompute(framework)

    def test_explicit_baseline_used(self, small_social_graph):
        updates = addition_stream(small_social_graph, 2, rng=6)
        series = measure_stream_speedups(
            small_social_graph, updates, baseline_seconds=1.0
        )
        assert series.baseline_seconds == 1.0
        assert series.speedups[0] == pytest.approx(1.0 / series.update_seconds[0])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_related_work_table_mentions_this_work(self):
        table = related_work_table()
        assert "This work" in table
        assert "O(n^2)" in table

    def test_table2_rows(self, small_social_graph):
        rows = table2_rows([profile(small_social_graph, name="social-60")])
        assert rows[0][0] == "social-60"
        assert rows[0][1] == small_social_graph.num_vertices

    def test_speedup_summary_rows_with_missing_side(self):
        series = SpeedupSeries(
            label="x", variant=Variant.MO, baseline_seconds=1.0, speedups=[2.0, 4.0, 8.0]
        )
        rows = speedup_summary_rows({"x": series}, {})
        assert rows[0][0] == "x"
        assert rows[0][1:4] == [2, 4, 8]
        assert rows[0][4:] == ["-", "-", "-"]
