"""Config round-trips, store-URI parsing and the deprecation shims."""

import json

import pytest

from repro.api import BetweennessConfig, BetweennessSession, TopKTracker, resume_session
from repro.api.config import EXECUTORS
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.core.checkpoint import load_checkpoint
from repro.exceptions import ConfigurationError
from repro.storage import (
    ArrayBDStore,
    DiskBDStore,
    InMemoryBDStore,
    create_store,
    parse_store_uri,
    register_store_scheme,
    registered_store_schemes,
)
from repro.graph import Graph

from tests.helpers import assert_scores_equal, random_connected_graph


@pytest.fixture
def small_graph():
    return random_connected_graph(16, 0.2, seed=3)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = BetweennessConfig()
        assert config.backend == "dicts"
        assert config.executor == "serial"
        assert config.store == "memory://"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("backend", "numpy"),
            ("batch_size", 0),
            ("batch_size", "two"),
            ("executor", "threads"),
            ("workers", 0),
            ("directed", "yes"),
            ("checkpoint_every", 0),
            ("store", "redis://x"),
        ],
    )
    def test_invalid_field_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            BetweennessConfig(**{field: value})

    def test_serial_executor_rejects_multiple_workers(self):
        with pytest.raises(ConfigurationError):
            BetweennessConfig(workers=4)
        for executor in EXECUTORS[1:]:
            store = (
                "shard:///var/data/bc" if executor == "shard" else "memory://"
            )
            config = BetweennessConfig(executor=executor, workers=4, store=store)
            assert config.workers == 4

    def test_mp_configuration_constraints(self):
        assert BetweennessConfig(maintain_predecessors=True).maintain_predecessors
        with pytest.raises(ConfigurationError):
            BetweennessConfig(maintain_predecessors=True, backend="arrays")
        with pytest.raises(ConfigurationError):
            BetweennessConfig(
                maintain_predecessors=True, executor="process", workers=2
            )

    def test_checkpoint_policy_needs_a_path(self):
        with pytest.raises(ConfigurationError):
            BetweennessConfig(checkpoint_every=5)
        config = BetweennessConfig(checkpoint_every=5, checkpoint_path="ck.bin")
        assert config.checkpoint_every == 5

    def test_checkpoint_policy_is_serial_only(self):
        """A periodic policy under a parallel executor would fail mid-stream
        (checkpoint() is serial-only), so it is rejected up front."""
        with pytest.raises(ConfigurationError):
            BetweennessConfig(
                executor="process", workers=2,
                checkpoint_every=1, checkpoint_path="ck.bin",
            )

    def test_parallel_store_uri_must_be_pathless(self):
        with pytest.raises(ConfigurationError):
            BetweennessConfig(
                executor="process", workers=2, store="disk:///tmp/bd.bin"
            )
        assert BetweennessConfig(executor="process", workers=2, store="disk://")

    def test_seed_store_path_is_process_only(self):
        with pytest.raises(ConfigurationError):
            BetweennessConfig(seed_store_path="bd.bin")
        config = BetweennessConfig(
            executor="process", workers=2, seed_store_path="bd.bin"
        )
        assert config.seed_store_path == "bd.bin"


class TestConfigSerialization:
    def test_dict_round_trip(self):
        configs = [
            BetweennessConfig(
                backend="arrays",
                directed=True,
                batch_size=8,
                store="disk:///tmp/bd.bin",
                checkpoint_path="/tmp/ck.bin",
                checkpoint_every=2,
            ),
            BetweennessConfig(
                executor="process",
                workers=3,
                store="disk://",
                seed_store_path="/tmp/seed.bin",
            ),
        ]
        for config in configs:
            assert BetweennessConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = BetweennessConfig(backend="arrays", batch_size=4)
        text = config.to_json()
        assert json.loads(text)["backend"] == "arrays"
        assert BetweennessConfig.from_json(text) == config

    def test_file_round_trip(self, tmp_path):
        config = BetweennessConfig(store="arrays://", batch_size=2)
        path = config.save(tmp_path / "run.json")
        assert BetweennessConfig.load(path) == config

    def test_unknown_keys_rejected(self):
        payload = BetweennessConfig().to_dict()
        payload["bach_size"] = 3
        with pytest.raises(ConfigurationError, match="bach_size"):
            BetweennessConfig.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            BetweennessConfig.from_json("{not json")

    def test_missing_config_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            BetweennessConfig.load(tmp_path / "absent.json")

    def test_replace_revalidates(self):
        config = BetweennessConfig()
        with pytest.raises(ConfigurationError):
            config.replace(batch_size=-1)

    def test_for_graph_matches_orientation(self):
        directed = Graph(directed=True)
        assert BetweennessConfig.for_graph(directed).directed is True


class TestShardConfig:
    """The `shard` executor's config surface: URI pairing and round-trips."""

    URI = "shard:///var/data/bc?shards=4&checkpoint_every=8"

    def test_shard_uri_round_trips_through_json(self):
        config = BetweennessConfig(
            executor="shard", workers=4, store=self.URI, backend="arrays"
        )
        assert BetweennessConfig.from_json(config.to_json()) == config
        assert BetweennessConfig.from_dict(config.to_dict()) == config

    def test_shard_config_file_round_trip(self, tmp_path):
        config = BetweennessConfig(executor="shard", workers=4, store=self.URI)
        path = config.save(tmp_path / "shard.json")
        assert BetweennessConfig.load(path) == config

    def test_shard_executor_needs_a_shard_uri(self):
        with pytest.raises(ConfigurationError, match="shard"):
            BetweennessConfig(executor="shard", workers=4, store="memory://")

    def test_shard_uri_needs_the_shard_executor(self):
        with pytest.raises(ConfigurationError, match="shard executor"):
            BetweennessConfig(executor="process", workers=4, store=self.URI)
        with pytest.raises(ConfigurationError, match="shard executor"):
            BetweennessConfig(store="shard:///var/data/bc")

    def test_workers_must_agree_with_the_shards_param(self):
        with pytest.raises(ConfigurationError, match="shards=4"):
            BetweennessConfig(executor="shard", workers=3, store=self.URI)
        config = BetweennessConfig(executor="shard", workers=1, store=self.URI)
        assert config.workers == 1  # URI's shards=4 is authoritative

    def test_checkpoint_path_is_refused_under_shard(self):
        """Sharded checkpoints live in the shard root, one per shard; a
        single sidecar path has no meaning there."""
        with pytest.raises(ConfigurationError, match="shard"):
            BetweennessConfig(
                executor="shard", workers=4, store=self.URI,
                checkpoint_path="/tmp/ck.bin",
            )

    def test_checkpoint_every_lives_in_the_uri_under_shard(self):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            BetweennessConfig(
                executor="shard", workers=4, store=self.URI, checkpoint_every=8
            )


class TestRecvTimeoutConfig:
    """The per-reply worker timeout surfaced as a first-class config field."""

    @pytest.mark.parametrize("value", [0, -1, -0.5, 0.0, True, "fast"])
    def test_non_positive_or_non_numeric_rejected(self, value):
        with pytest.raises(ConfigurationError, match="recv_timeout"):
            BetweennessConfig(
                executor="process", workers=2, recv_timeout=value
            )

    def test_only_for_process_and_shard(self):
        with pytest.raises(ConfigurationError, match="recv_timeout"):
            BetweennessConfig(recv_timeout=5.0)
        with pytest.raises(ConfigurationError, match="recv_timeout"):
            BetweennessConfig(
                executor="mapreduce", workers=2, recv_timeout=5.0
            )
        assert BetweennessConfig(
            executor="process", workers=2, recv_timeout=5.0
        ).recv_timeout == 5.0
        assert BetweennessConfig(
            executor="shard", workers=2, store="shard:///var/bc?shards=2",
            recv_timeout=0.25,
        ).recv_timeout == 0.25

    def test_round_trips(self):
        config = BetweennessConfig(
            executor="process", workers=2, recv_timeout=1.5
        )
        assert BetweennessConfig.from_dict(config.to_dict()) == config
        assert BetweennessConfig.from_json(config.to_json()) == config


class TestSharedMemoryConfig:
    """The zero-copy data plane's config surface: field, URI param, refusals."""

    def test_field_and_uri_param_both_enable(self):
        config = BetweennessConfig(
            executor="process", workers=2, store="arrays://",
            shared_memory=True,
        )
        assert config.effective_shared_memory
        config = BetweennessConfig(
            executor="process", workers=2, store="arrays://?shm=1"
        )
        assert not config.shared_memory
        assert config.effective_shared_memory
        assert not BetweennessConfig().effective_shared_memory

    def test_shard_uri_takes_the_param_too(self):
        config = BetweennessConfig(
            executor="shard", workers=2, store="shard:///var/bc?shards=2&shm=1"
        )
        assert config.effective_shared_memory

    def test_contradiction_refused(self):
        with pytest.raises(ConfigurationError, match="contradicts"):
            BetweennessConfig(
                executor="process", workers=2, store="arrays://?shm=0",
                shared_memory=True,
            )

    def test_non_boolean_values_refused(self):
        with pytest.raises(ConfigurationError, match="shared_memory"):
            BetweennessConfig(shared_memory="yes")
        with pytest.raises(ConfigurationError, match="shm"):
            BetweennessConfig(
                executor="process", workers=2, store="arrays://?shm=maybe"
            )

    def test_mapreduce_refused(self):
        with pytest.raises(ConfigurationError, match="mapreduce"):
            BetweennessConfig(
                executor="mapreduce", workers=2, shared_memory=True,
                store="arrays://",
            )

    def test_serial_needs_a_columnar_store(self):
        with pytest.raises(ConfigurationError, match="columnar"):
            BetweennessConfig(shared_memory=True)  # memory:// + dicts
        assert BetweennessConfig(
            shared_memory=True, backend="arrays"
        ).effective_shared_memory
        assert BetweennessConfig(
            shared_memory=True, store="arrays://"
        ).effective_shared_memory

    def test_serial_disk_needs_buffered_mode(self):
        with pytest.raises(ConfigurationError, match="mmap"):
            BetweennessConfig(shared_memory=True, store="disk://")
        config = BetweennessConfig(
            shared_memory=True, store="disk://?mmap=false", backend="arrays"
        )
        assert config.effective_shared_memory

    def test_round_trips(self):
        config = BetweennessConfig(
            executor="process", workers=2, store="arrays://?shm=1"
        )
        assert BetweennessConfig.from_dict(config.to_dict()) == config
        config = BetweennessConfig(
            executor="shard", workers=2, store="shard:///var/bc?shards=2",
            shared_memory=True, recv_timeout=2.0,
        )
        assert BetweennessConfig.from_json(config.to_json()) == config


class TestStoreURIs:
    def test_valid_uris_parse(self):
        assert parse_store_uri("memory://").scheme == "memory"
        assert parse_store_uri("arrays://").scheme == "arrays"
        parsed = parse_store_uri("disk:///tmp/bd.bin?mmap=false&capacity=64")
        assert parsed.scheme == "disk"
        assert parsed.path == "/tmp/bd.bin"
        assert parsed.params == {"mmap": "false", "capacity": "64"}
        assert parse_store_uri("disk:relative/bd.bin").path == "relative/bd.bin"

    @pytest.mark.parametrize(
        "uri",
        [
            "",
            "   ",
            "bogus://",                      # unknown scheme
            "no-scheme-at-all",
            "memory:///some/path",           # path on a path-less scheme
            "memory://?mmap=true",           # unknown param for the scheme
            "disk:///x?wibble=1",            # unknown param
            "disk://host/path",              # host component
            "disk:///x#frag",                # fragment
            "disk:///x?mmap=1&mmap=0",       # duplicate param
            "disk:///x?mmap",                # malformed query
        ],
    )
    def test_bad_uris_rejected(self, uri):
        with pytest.raises(ConfigurationError):
            parse_store_uri(uri)

    def test_bad_param_values_rejected(self, small_graph):
        vertices = small_graph.vertex_list()
        with pytest.raises(ConfigurationError):
            create_store("disk://?mmap=maybe", vertices)
        with pytest.raises(ConfigurationError):
            create_store("disk://?capacity=lots", vertices)

    def test_memory_uri_matches_backend(self, small_graph):
        vertices = small_graph.vertex_list()
        assert isinstance(create_store("memory://", vertices), InMemoryBDStore)
        arrays = create_store("memory://", vertices, backend="arrays")
        assert isinstance(arrays, ArrayBDStore)

    def test_arrays_uri_for_both_backends(self, small_graph):
        vertices = small_graph.vertex_list()
        for backend in ("dicts", "arrays"):
            store = create_store("arrays://", vertices, backend=backend)
            assert isinstance(store, ArrayBDStore)

    def test_disk_uri_honours_params(self, small_graph, tmp_path):
        vertices = small_graph.vertex_list()
        path = tmp_path / "bd.bin"
        store = create_store(f"disk:{path}?mmap=false&capacity=64", vertices)
        try:
            assert isinstance(store, DiskBDStore)
            assert store.capacity == 64
            assert str(store.path) == str(path)
        finally:
            store.close()

    def test_str_round_trips_through_parse(self):
        for uri in (
            "memory://",
            "arrays://",
            "disk://",
            "disk:///abs/bd.bin",
            "disk:rel/bd.bin",
            "disk:///abs/bd.bin?mmap=false&capacity=64",
        ):
            parsed = parse_store_uri(uri)
            assert parse_store_uri(str(parsed)) == parsed

    def test_third_party_scheme_registers(self, small_graph):
        sentinel = InMemoryBDStore()

        def factory(request):
            assert request.uri.scheme == "teststore"
            return sentinel

        register_store_scheme("teststore", factory, replace=True)
        assert "teststore" in registered_store_schemes()
        assert create_store("teststore://", small_graph.vertex_list()) is sentinel

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(ConfigurationError):
            register_store_scheme("memory", lambda request: None)

    def test_invalid_scheme_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_store_scheme("not a scheme", lambda request: None)


class TestCheckpointEmbeddedConfig:
    def test_resume_needs_nothing_but_the_path(self, small_graph, tmp_path):
        config = BetweennessConfig(
            backend="arrays",
            store=f"disk:{tmp_path / 'bd.bin'}",
            batch_size=4,
            checkpoint_path=str(tmp_path / "ck.bin"),
        )
        with BetweennessSession(small_graph, config) as session:
            session.apply(EdgeUpdate.addition(0, 100))
            session.checkpoint()
            expected = session.vertex_betweenness()

        resumed = resume_session(tmp_path / "ck.bin")
        try:
            assert resumed.config == config
            assert resumed.vertex_betweenness() == expected
        finally:
            resumed.close()

    def test_sidecar_carries_the_config_dict(self, small_graph, tmp_path):
        config = BetweennessConfig(batch_size=3)
        with BetweennessSession(small_graph, config) as session:
            session.checkpoint(tmp_path / "ck.bin")
        ckpt = load_checkpoint(tmp_path / "ck.bin")
        assert ckpt.config == config.to_dict()

    def test_resume_overrides_replace_config_fields(self, small_graph, tmp_path):
        config = BetweennessConfig(checkpoint_path=str(tmp_path / "ck.bin"))
        with BetweennessSession(small_graph, config) as session:
            session.checkpoint()
            expected = session.vertex_betweenness()
        resumed = resume_session(tmp_path / "ck.bin", backend="arrays")
        try:
            assert resumed.config.backend == "arrays"
            assert resumed.vertex_betweenness() == expected
        finally:
            resumed.close()

    def test_pre_config_sidecar_still_resumes(self, small_graph, tmp_path):
        framework = IncrementalBetweenness(small_graph)
        framework.checkpoint(tmp_path / "old.bin")  # no config embedded
        session = resume_session(tmp_path / "old.bin")
        try:
            assert session.config == BetweennessConfig()
            assert_scores_equal(
                session.vertex_betweenness(), framework.vertex_betweenness(), 0.0
            )
        finally:
            session.close()


class TestDeprecationShims:
    def test_topk_monitor_warns_and_matches_tracker(self, small_graph):
        from repro.applications import TopKMonitor

        stream = [EdgeUpdate.addition(0, 100), EdgeUpdate.removal(0, 100)]
        with pytest.warns(DeprecationWarning):
            monitor = TopKMonitor(small_graph, k=4)
        monitor.process_stream(stream)

        session = BetweennessSession(
            small_graph, BetweennessConfig.for_graph(small_graph)
        )
        tracker = session.subscribe(TopKTracker(k=4))
        for update in stream:
            session.apply(update)
        assert monitor.snapshots == tracker.snapshots
        assert monitor.ranking_churn() == tracker.ranking_churn()

    def test_process_stream_batched_warns_and_matches_stream(self, small_graph):
        stream = [
            EdgeUpdate.addition(0, 100),
            EdgeUpdate.addition(1, 101),
            EdgeUpdate.removal(0, 100),
        ]
        legacy = IncrementalBetweenness(small_graph)
        with pytest.warns(DeprecationWarning):
            legacy.process_stream_batched(stream, 2)

        with BetweennessSession(
            small_graph,
            BetweennessConfig.for_graph(small_graph, batch_size=2),
        ) as session:
            for _ in session.stream(stream):
                pass
            # Bit-identical, not just within tolerance.
            assert session.vertex_betweenness() == legacy.vertex_betweenness()
            assert session.edge_betweenness() == legacy.edge_betweenness()
