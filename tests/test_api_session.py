"""The session facade: equivalence matrix, events, subscribers, lifecycle."""

import itertools

import pytest

from repro.api import (
    BatchApplied,
    BetweennessConfig,
    BetweennessSession,
    BootstrapCompleted,
    CheckpointWritten,
    SessionClosed,
    SessionSubscriber,
    UpdateApplied,
    open_session,
    resume_session,
)
from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.exceptions import ConfigurationError
from repro.graph import Graph
from repro.storage import InMemoryBDStore
from repro.storage.buffers import active_segments, shm_available

from tests.helpers import assert_scores_equal, random_connected_graph

#: Exactly zero tolerance — serial pipelines must be bit-identical.  The
#: process executor reduces partial scores in a *different grouping* than
#: the flat serial sum (per-partition subtotals folded in stable partition
#: order — see merge_partial_scores), so it differs from the serial
#: reference by float re-association error only: ~1e-14 relative, which for
#: these graphs is comfortably below 1e-12 absolute.  The merge itself is
#: deterministic, so anything past re-association error is a real bug.
EXACT = 0.0
MERGE_TOLERANCE = 1e-12


def build_graph(directed: bool) -> Graph:
    graph = random_connected_graph(18, 0.18, seed=11)
    if not directed:
        return graph
    oriented = Graph(directed=True)
    for vertex in graph.vertex_list():
        oriented.add_vertex(vertex)
    for u, v in graph.edges():
        oriented.add_edge(u, v)
        if (u + v) % 3 == 0:  # some reciprocal pairs
            oriented.add_edge(v, u)
    return oriented


def update_stream(graph: Graph):
    edges = list(graph.edges())
    return [
        EdgeUpdate.addition(0, 100),       # vertex birth
        EdgeUpdate.addition(100, 5),
        EdgeUpdate.removal(*edges[0]),
        EdgeUpdate.addition(*edges[0]),    # remove-then-readd
        EdgeUpdate.removal(*edges[3]),
        EdgeUpdate.addition(2, 101),       # second birth
    ]


def reference_scores(directed: bool, batch_size: int):
    """The pre-redesign call path: serial dicts framework, same batching.

    Bit-identity is defined against the old call path under the *same*
    batching granularity — different batch sizes interleave the per-source
    float accumulations differently (within 1e-9), exactly as the batched
    pipeline always has.
    """
    graph = build_graph(directed)
    framework = IncrementalBetweenness(graph)
    stream = update_stream(graph)
    if batch_size == 1:
        for update in stream:
            framework.apply(update)
    else:
        for start in range(0, len(stream), batch_size):
            framework.apply_updates(stream[start : start + batch_size])
    return framework.vertex_betweenness(), framework.edge_betweenness()


@pytest.fixture(scope="module")
def references():
    return {
        (directed, batch_size): reference_scores(directed, batch_size)
        for directed in (False, True)
        for batch_size in (1, 2, 3)
    }


class TestEquivalenceMatrix:
    """{dicts, arrays} × {memory, arrays, disk} × executions × orientations."""

    @pytest.mark.parametrize(
        "backend, store, batch_size, directed",
        [
            combo
            for combo in itertools.product(
                ("dicts", "arrays"),
                ("memory://", "arrays://", "disk://"),
                (1, 3),                     # serial and batched pipelines
                (False, True),
            )
        ],
    )
    def test_serial_pipelines_bit_identical(
        self, references, backend, store, batch_size, directed
    ):
        graph = build_graph(directed)
        config = BetweennessConfig(
            backend=backend, store=store, batch_size=batch_size, directed=directed
        )
        expected_vertex, expected_edge = references[(directed, batch_size)]
        with BetweennessSession(graph, config) as session:
            for _ in session.stream(update_stream(graph)):
                pass
            assert_scores_equal(
                session.vertex_betweenness(), expected_vertex, EXACT, "vertex"
            )
            assert_scores_equal(
                session.edge_betweenness(), expected_edge, EXACT, "edge"
            )
            # Exact key sets too: an edge's score entry exists iff the edge does.
            assert set(session.edge_betweenness()) == set(expected_edge)

    @pytest.mark.parametrize(
        "backend, store, directed",
        list(itertools.product(("dicts", "arrays"), ("memory://", "disk://"), (False, True))),
    )
    def test_process_parallel_matches(self, references, backend, store, directed):
        graph = build_graph(directed)
        config = BetweennessConfig(
            backend=backend,
            store=store,
            batch_size=2,
            directed=directed,
            executor="process",
            workers=2,
        )
        expected_vertex, expected_edge = references[(directed, 2)]
        with BetweennessSession(graph, config) as session:
            for _ in session.stream(update_stream(graph)):
                pass
            assert_scores_equal(
                session.vertex_betweenness(), expected_vertex, MERGE_TOLERANCE,
                "vertex",
            )
            assert_scores_equal(
                session.edge_betweenness(), expected_edge, MERGE_TOLERANCE, "edge"
            )

    def test_mapreduce_executor_matches(self, references):
        graph = build_graph(False)
        config = BetweennessConfig(executor="mapreduce", workers=3)
        expected_vertex, _ = references[(False, 1)]
        with BetweennessSession(graph, config) as session:
            for _ in session.stream(update_stream(graph)):
                pass
            assert_scores_equal(
                session.vertex_betweenness(), expected_vertex, MERGE_TOLERANCE
            )

    def test_matches_from_scratch_brandes(self):
        graph = build_graph(False)
        with open_session(graph, backend="arrays", batch_size=2) as session:
            for _ in session.stream(update_stream(graph)):
                pass
            reference = brandes_betweenness(session.graph)
            assert_scores_equal(
                session.vertex_betweenness(), reference.vertex_scores, 1e-8
            )


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
class TestSharedMemoryMatrix:
    """{process, shard} × {directed, undirected} × {shm on, off}.

    The zero-copy data plane is a *wire-format* change only: with
    ``shared_memory=True`` the same executor must produce scores ``==``
    its own pickled-dispatch run — not merely close — and must leave
    ``/dev/shm`` empty afterwards.
    """

    def _config(self, executor, directed, shared_memory, tmp_path):
        if executor == "process":
            return BetweennessConfig(
                backend="arrays",
                store="arrays://",
                batch_size=2,
                directed=directed,
                executor="process",
                workers=2,
                shared_memory=shared_memory,
            )
        root = tmp_path / f"root-{'shm' if shared_memory else 'heap'}"
        return BetweennessConfig(
            directed=directed,
            batch_size=2,
            executor="shard",
            workers=2,
            store=f"shard://{root}?shards=2",
            shared_memory=shared_memory,
        )

    def _run(self, graph, config):
        with BetweennessSession(graph, config) as session:
            for _ in session.stream(update_stream(graph)):
                pass
            return session.vertex_betweenness(), session.edge_betweenness()

    @pytest.mark.parametrize(
        "directed", [False, True], ids=["undirected", "directed"]
    )
    @pytest.mark.parametrize("executor", ["process", "shard"])
    def test_shm_run_equals_heap_run_bit_identically(
        self, tmp_path, executor, directed, references
    ):
        graph = build_graph(directed)
        heap = self._run(graph, self._config(executor, directed, False, tmp_path))
        shm = self._run(graph, self._config(executor, directed, True, tmp_path))
        assert shm[0] == heap[0]
        assert shm[1] == heap[1]
        assert active_segments() == []
        # And both agree with the serial reference within merge tolerance.
        expected_vertex, expected_edge = references[(directed, 2)]
        assert_scores_equal(shm[0], expected_vertex, MERGE_TOLERANCE, "vertex")
        assert_scores_equal(shm[1], expected_edge, MERGE_TOLERANCE, "edge")

    def test_uri_param_is_the_same_switch(self, tmp_path):
        graph = build_graph(False)
        flagged = self._run(graph, self._config("process", False, True, tmp_path))
        via_uri = self._run(
            graph,
            BetweennessConfig(
                backend="arrays",
                store="arrays://?shm=1",
                batch_size=2,
                executor="process",
                workers=2,
            ),
        )
        assert via_uri == flagged
        assert active_segments() == []


class TestRecvTimeoutThreading:
    """config.recv_timeout must reach the executor that enforces it."""

    def test_reaches_process_executor(self, path5):
        config = BetweennessConfig(
            executor="process", workers=2, recv_timeout=30.0
        )
        with BetweennessSession(path5, config) as session:
            assert session._cluster._recv_timeout == 30.0

    def test_reaches_shard_coordinator(self, path5, tmp_path):
        config = BetweennessConfig(
            executor="shard",
            workers=2,
            store=f"shard://{tmp_path / 'root'}?shards=2",
            recv_timeout=45.0,
        )
        with BetweennessSession(path5, config) as session:
            assert session._cluster._recv_timeout == 45.0

    def test_defaults_to_wait_forever(self, path5):
        config = BetweennessConfig(executor="process", workers=2)
        with BetweennessSession(path5, config) as session:
            assert session._cluster._recv_timeout is None


class RecordingSubscriber(SessionSubscriber):
    def __init__(self):
        self.attached_to = None
        self.events = []

    def attach(self, session):
        self.attached_to = session

    def on_event(self, event):
        self.events.append(event)


class TestEventsAndSubscribers:
    def test_event_sequence_and_types(self, path5):
        events = []
        session = BetweennessSession(path5)
        session.subscribe(events.append)  # plain-callable subscriber
        session.apply(EdgeUpdate.addition(0, 4))
        session.apply_batch([EdgeUpdate.removal(0, 4), EdgeUpdate.addition(1, 3)])
        session.close()
        # Bootstrap fired before subscription; the rest arrive in order.
        assert [type(e) for e in events] == [UpdateApplied, BatchApplied, SessionClosed]
        sequences = [e.sequence for e in events]
        assert sequences == sorted(sequences)
        assert events[1].batch_index == 0
        assert events[1].updates[0].is_removal

    def test_subscriber_object_receives_attach(self, path5):
        subscriber = RecordingSubscriber()
        with BetweennessSession(path5) as session:
            session.subscribe(subscriber)
            assert subscriber.attached_to is session
            session.apply(EdgeUpdate.addition(0, 2))
        assert [type(e) for e in subscriber.events] == [UpdateApplied, SessionClosed]

    def test_bootstrap_event_reaches_constructor_subscribers(self, path5):
        subscriber = RecordingSubscriber()
        with BetweennessSession(path5, subscribers=[subscriber]) as session:
            assert subscriber.attached_to is session
        assert isinstance(subscriber.events[0], BootstrapCompleted)
        assert subscriber.events[0].num_vertices == 5
        assert subscriber.events[0].sequence == 0

    def test_stream_yields_batch_events_despite_nested_emits(self, path5, tmp_path):
        """A subscriber emitting events (e.g. checkpointing) while handling
        BatchApplied must not corrupt what stream() yields."""
        with BetweennessSession(path5) as session:
            session.subscribe(
                lambda e: session.checkpoint(tmp_path / "nested.bin")
                if isinstance(e, BatchApplied)
                else None
            )
            stream = [EdgeUpdate.addition(0, 2), EdgeUpdate.addition(0, 3)]
            events = list(session.stream(stream, batch_size=1))
        assert [type(e) for e in events] == [BatchApplied, BatchApplied]
        assert [e.batch_index for e in events] == [0, 1]
        assert (tmp_path / "nested.bin").exists()

    def test_unsubscribe_stops_delivery(self, path5):
        events = []
        with BetweennessSession(path5) as session:
            session.subscribe(events.append)
            session.apply(EdgeUpdate.addition(0, 2))
            session.unsubscribe(events.append)
            session.apply(EdgeUpdate.removal(0, 2))
        assert len([e for e in events if isinstance(e, UpdateApplied)]) == 1

    def test_invalid_subscriber_rejected(self, path5):
        with BetweennessSession(path5) as session:
            with pytest.raises(ConfigurationError):
                session.subscribe(object())


class TestSessionSurface:
    def test_top_k_and_snapshot(self, path5):
        with BetweennessSession(path5) as session:
            top = session.top_k(2)
            assert len(top) == 2
            full = sorted(
                session.vertex_betweenness().items(),
                key=lambda item: (-item[1], repr(item[0])),
            )
            assert list(top) == full[:2]
            snap = session.snapshot()
            assert snap.num_vertices == 5
            assert snap.vertex_scores == session.vertex_betweenness()
            assert snap.top_vertices(2) == top
            with pytest.raises(ConfigurationError):
                session.top_k(0)

    def test_checkpoint_policy_writes_periodically(self, path5, tmp_path):
        ck = tmp_path / "auto.bin"
        config = BetweennessConfig(
            batch_size=1, checkpoint_path=str(ck), checkpoint_every=2
        )
        checkpoints = []
        with BetweennessSession(path5, config) as session:
            session.subscribe(
                lambda e: checkpoints.append(e)
                if isinstance(e, CheckpointWritten)
                else None
            )
            stream = [
                EdgeUpdate.addition(0, 2),
                EdgeUpdate.addition(0, 3),
                EdgeUpdate.addition(0, 4),
                EdgeUpdate.addition(1, 3),
            ]
            for _ in session.stream(stream):
                pass
        assert len(checkpoints) == 2  # after batches 2 and 4
        assert ck.exists()

    def test_config_graph_orientation_mismatch(self):
        with pytest.raises(ConfigurationError):
            BetweennessSession(Graph(directed=True), BetweennessConfig())

    def test_closed_session_refuses_work(self, path5):
        session = BetweennessSession(path5)
        session.close()
        session.close()  # idempotent
        with pytest.raises(ConfigurationError):
            session.apply(EdgeUpdate.addition(0, 2))

    def test_checkpoint_needs_serial_executor(self, path5, tmp_path):
        config = BetweennessConfig(executor="process", workers=2)
        with BetweennessSession(path5, config) as session:
            with pytest.raises(ConfigurationError):
                session.checkpoint(tmp_path / "ck.bin")
            with pytest.raises(ConfigurationError):
                session.framework

    def test_checkpoint_needs_a_path(self, path5):
        with BetweennessSession(path5) as session:
            with pytest.raises(ConfigurationError):
                session.checkpoint()

    def test_explicit_store_is_serial_only(self, path5):
        config = BetweennessConfig(executor="process", workers=2)
        with pytest.raises(ConfigurationError):
            BetweennessSession(path5, config, store=InMemoryBDStore())

    def test_explicit_store_overrides_uri(self, path5):
        store = InMemoryBDStore()
        with BetweennessSession(path5, store=store) as session:
            assert session.framework.store is store

    def test_open_session_overrides(self, path5):
        with open_session(path5, batch_size=4) as session:
            assert session.config.batch_size == 4
        base = BetweennessConfig(batch_size=2)
        with open_session(path5, base, batch_size=8) as session:
            assert session.config.batch_size == 8

    def test_resumed_session_keeps_streaming(self, path5, tmp_path):
        ck = tmp_path / "ck.bin"
        with open_session(path5, checkpoint_path=str(ck)) as session:
            session.apply(EdgeUpdate.addition(0, 3))
            session.checkpoint()
        resumed = resume_session(ck)
        try:
            resumed.apply(EdgeUpdate.addition(0, 4))
            fresh = IncrementalBetweenness(resumed.graph)
            assert_scores_equal(
                resumed.vertex_betweenness(), fresh.vertex_betweenness(), EXACT
            )
        finally:
            resumed.close()
