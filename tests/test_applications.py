"""Tests for the Girvan–Newman and top-k monitoring applications."""

import pytest

from repro.applications import TopKMonitor, girvan_newman, modularity
from repro.core import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.generators import synthetic_social_graph
from repro.graph import Graph


@pytest.fixture
def two_communities():
    """Two dense 4-cliques joined by a single bridge."""
    edges = []
    for base in (0, 4):
        members = range(base, base + 4)
        edges.extend(
            (u, v) for u in members for v in members if u < v
        )
    edges.append((3, 4))
    return Graph.from_edges(edges)


class TestModularity:
    def test_perfect_split_has_positive_modularity(self, two_communities):
        partition = [{0, 1, 2, 3}, {4, 5, 6, 7}]
        assert modularity(two_communities, partition) > 0.3

    def test_single_community_modularity_zero_or_negative(self, two_communities):
        whole = [set(two_communities.vertices())]
        assert modularity(two_communities, whole) <= 1e-9

    def test_empty_graph(self):
        assert modularity(Graph(), []) == 0.0


class TestGirvanNewman:
    def test_bridge_removed_first(self, two_communities):
        result = girvan_newman(two_communities, max_removals=1)
        assert result.removed_edges[0] == (3, 4)
        assert result.num_levels == 1
        assert result.hierarchy.levels[0] == [{0, 1, 2, 3}, {4, 5, 6, 7}] or \
            sorted(map(sorted, result.hierarchy.levels[0])) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_incremental_and_recompute_agree(self, two_communities):
        incremental = girvan_newman(two_communities, max_removals=6, use_incremental=True)
        recompute = girvan_newman(two_communities, max_removals=6, use_incremental=False)
        assert incremental.removed_edges == recompute.removed_edges
        assert len(incremental.hierarchy.levels) == len(recompute.hierarchy.levels)

    def test_target_communities_stops_early(self, two_communities):
        result = girvan_newman(two_communities, target_communities=2)
        assert result.num_levels >= 1
        assert result.edges_processed < two_communities.num_edges

    def test_full_run_removes_all_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        result = girvan_newman(g)
        assert result.edges_processed == 3

    def test_best_partition_maximises_modularity(self, two_communities):
        result = girvan_newman(two_communities, max_removals=8)
        partition, q = result.hierarchy.best_partition(two_communities)
        assert q == pytest.approx(
            modularity(two_communities, partition)
        )
        assert q > 0.3

    def test_input_graph_untouched(self, two_communities):
        before = two_communities.num_edges
        girvan_newman(two_communities, max_removals=3)
        assert two_communities.num_edges == before

    def test_invalid_max_removals(self, two_communities):
        with pytest.raises(ConfigurationError):
            girvan_newman(two_communities, max_removals=-1)

    def test_larger_social_graph_smoke(self):
        g = synthetic_social_graph(60, rng=5)
        result = girvan_newman(g, max_removals=10)
        assert result.edges_processed == 10


class TestDirectedModularity:
    def test_directed_two_communities_value(self):
        # Two directed 2-cycles joined by one arc: m = 5 directed edges.
        g = Graph.from_edges(
            [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], directed=True
        )
        partition = [{0, 1}, {2, 3}]
        # Leicht-Newman: sum_c [m_c/m - d_out_c * d_in_c / m^2]
        # community A: m_c=2, d_out=3 (0->1,1->0,1->2), d_in=2
        # community B: m_c=2, d_out=2, d_in=3
        expected = (2 / 5 - 3 * 2 / 25) + (2 / 5 - 2 * 3 / 25)
        assert modularity(g, partition) == pytest.approx(expected)

    def test_directed_differs_from_symmetrised_formula(self):
        # An orientation-skewed partition: the undirected formula would
        # treat both communities alike; the directed null model must not.
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 0), (4, 0)], directed=True
        )
        lopsided = modularity(g, [{0, 1}, {2, 3, 4}])
        m = g.num_edges
        # Hand-computed: A has m_c=2, d_out=4, d_in=3; B has m_c=0,
        # d_out=1, d_in=2.
        assert lopsided == pytest.approx((2 / m - 12 / m**2) + (0 - 2 / m**2))

    def test_whole_graph_partition_is_zero_ish(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        # One community holding everything: m_c/m = 1 and the null term is
        # d_out*d_in/m^2 = m*m/m^2 = 1, so Q = 0 exactly.
        assert modularity(g, [{0, 1, 2}]) == pytest.approx(0.0)

    def test_girvan_newman_runs_on_directed_graph(self):
        # Two weakly-knit directed triangles with a single bridge arc.
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
        g = Graph.from_edges(edges, directed=True)
        result = girvan_newman(g, max_removals=3, use_incremental=True)
        baseline = girvan_newman(g, max_removals=3, use_incremental=False)
        # The incremental and recompute drivers must remove the very same
        # arc sequence and discover the same (weak-connectivity) splits.
        assert result.removed_edges == baseline.removed_edges
        assert result.num_levels == baseline.num_levels >= 1


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestTopKMonitor:
    """Exercises the deprecated shim; the warning itself is asserted in
    tests/test_api_config.py."""

    def test_snapshots_track_updates(self, two_communities):
        monitor = TopKMonitor(two_communities, k=3)
        snapshot = monitor.process(EdgeUpdate.addition(0, 5))
        assert len(snapshot.top_vertices) == 3
        assert len(monitor.snapshots) == 1

    def test_bridge_endpoints_lead_ranking(self, two_communities):
        monitor = TopKMonitor(two_communities, k=2)
        top = monitor.top_vertices()
        assert {vertex for vertex, _ in top} == {3, 4}

    def test_ranking_churn_counts_changes(self, two_communities):
        monitor = TopKMonitor(two_communities, k=4)
        monitor.process(EdgeUpdate.addition(0, 6))
        monitor.process(EdgeUpdate.removal(3, 4))
        churn = monitor.ranking_churn()
        assert len(churn) == 1
        assert churn[0] >= 0

    def test_top_edges_tracked_when_enabled(self, two_communities):
        monitor = TopKMonitor(two_communities, k=2, track_edges=True)
        snapshot = monitor.process(EdgeUpdate.addition(1, 6))
        assert len(snapshot.top_edges) == 2

    def test_invalid_k(self, two_communities):
        with pytest.raises(ConfigurationError):
            TopKMonitor(two_communities, k=0)

    def test_heap_ranking_matches_full_sort(self, two_communities):
        """Regression: nlargest-style selection == the old full-sort path."""
        monitor = TopKMonitor(two_communities, k=3)
        stream = [
            EdgeUpdate.addition(0, 6),
            EdgeUpdate.removal(3, 4),
            EdgeUpdate.addition(2, 5),
        ]
        for update in stream:
            snapshot = monitor.process(update)
            for ranked, scores in (
                (snapshot.top_vertices, monitor._framework.vertex_betweenness()),
                (snapshot.top_edges, monitor._framework.edge_betweenness()),
            ):
                full_sort = tuple(
                    sorted(
                        scores.items(), key=lambda item: (-item[1], repr(item[0]))
                    )[: monitor.k]
                )
                assert ranked == full_sort

    def test_backend_kwarg_gives_identical_snapshots(self, two_communities):
        stream = [EdgeUpdate.addition(0, 6), EdgeUpdate.removal(3, 4)]
        snapshots = {}
        for backend in ("dicts", "arrays"):
            monitor = TopKMonitor(two_communities, k=4, backend=backend)
            monitor.process_stream(stream)
            snapshots[backend] = monitor.snapshots
        assert snapshots["dicts"] == snapshots["arrays"]

    def test_store_kwarg_is_used(self, two_communities, tmp_path):
        from repro.storage import DiskBDStore

        store = DiskBDStore(
            two_communities.vertex_list(), path=tmp_path / "topk.bin"
        )
        monitor = TopKMonitor(two_communities, k=2, store=store)
        try:
            assert monitor._framework.store is store
            assert monitor.top_vertices() == TopKMonitor(
                two_communities, k=2
            ).top_vertices()
        finally:
            store.close()
