"""Tests for the Girvan–Newman and top-k monitoring applications."""

import pytest

from repro.applications import TopKMonitor, girvan_newman, modularity
from repro.core import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.generators import synthetic_social_graph
from repro.graph import Graph


@pytest.fixture
def two_communities():
    """Two dense 4-cliques joined by a single bridge."""
    edges = []
    for base in (0, 4):
        members = range(base, base + 4)
        edges.extend(
            (u, v) for u in members for v in members if u < v
        )
    edges.append((3, 4))
    return Graph.from_edges(edges)


class TestModularity:
    def test_perfect_split_has_positive_modularity(self, two_communities):
        partition = [{0, 1, 2, 3}, {4, 5, 6, 7}]
        assert modularity(two_communities, partition) > 0.3

    def test_single_community_modularity_zero_or_negative(self, two_communities):
        whole = [set(two_communities.vertices())]
        assert modularity(two_communities, whole) <= 1e-9

    def test_empty_graph(self):
        assert modularity(Graph(), []) == 0.0


class TestGirvanNewman:
    def test_bridge_removed_first(self, two_communities):
        result = girvan_newman(two_communities, max_removals=1)
        assert result.removed_edges[0] == (3, 4)
        assert result.num_levels == 1
        assert result.hierarchy.levels[0] == [{0, 1, 2, 3}, {4, 5, 6, 7}] or \
            sorted(map(sorted, result.hierarchy.levels[0])) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_incremental_and_recompute_agree(self, two_communities):
        incremental = girvan_newman(two_communities, max_removals=6, use_incremental=True)
        recompute = girvan_newman(two_communities, max_removals=6, use_incremental=False)
        assert incremental.removed_edges == recompute.removed_edges
        assert len(incremental.hierarchy.levels) == len(recompute.hierarchy.levels)

    def test_target_communities_stops_early(self, two_communities):
        result = girvan_newman(two_communities, target_communities=2)
        assert result.num_levels >= 1
        assert result.edges_processed < two_communities.num_edges

    def test_full_run_removes_all_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        result = girvan_newman(g)
        assert result.edges_processed == 3

    def test_best_partition_maximises_modularity(self, two_communities):
        result = girvan_newman(two_communities, max_removals=8)
        partition, q = result.hierarchy.best_partition(two_communities)
        assert q == pytest.approx(
            modularity(two_communities, partition)
        )
        assert q > 0.3

    def test_input_graph_untouched(self, two_communities):
        before = two_communities.num_edges
        girvan_newman(two_communities, max_removals=3)
        assert two_communities.num_edges == before

    def test_invalid_max_removals(self, two_communities):
        with pytest.raises(ConfigurationError):
            girvan_newman(two_communities, max_removals=-1)

    def test_larger_social_graph_smoke(self):
        g = synthetic_social_graph(60, rng=5)
        result = girvan_newman(g, max_removals=10)
        assert result.edges_processed == 10


class TestTopKMonitor:
    def test_snapshots_track_updates(self, two_communities):
        monitor = TopKMonitor(two_communities, k=3)
        snapshot = monitor.process(EdgeUpdate.addition(0, 5))
        assert len(snapshot.top_vertices) == 3
        assert len(monitor.snapshots) == 1

    def test_bridge_endpoints_lead_ranking(self, two_communities):
        monitor = TopKMonitor(two_communities, k=2)
        top = monitor.top_vertices()
        assert {vertex for vertex, _ in top} == {3, 4}

    def test_ranking_churn_counts_changes(self, two_communities):
        monitor = TopKMonitor(two_communities, k=4)
        monitor.process(EdgeUpdate.addition(0, 6))
        monitor.process(EdgeUpdate.removal(3, 4))
        churn = monitor.ranking_churn()
        assert len(churn) == 1
        assert churn[0] >= 0

    def test_top_edges_tracked_when_enabled(self, two_communities):
        monitor = TopKMonitor(two_communities, k=2, track_edges=True)
        snapshot = monitor.process(EdgeUpdate.addition(1, 6))
        assert len(snapshot.top_edges) == 2

    def test_invalid_k(self, two_communities):
        with pytest.raises(ConfigurationError):
            TopKMonitor(two_communities, k=0)
