"""Batched pipeline: apply_updates must match the one-at-a-time path exactly."""

import random

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness, batches
from repro.exceptions import UpdateError
from repro.storage.disk import DiskBDStore

from tests.helpers import assert_scores_equal, random_connected_graph

TOLERANCE = 1e-9


def random_update_sequence(graph, length, seed, new_vertex_probability=0.15):
    """Random mixed add/remove stream, including brand-new vertices."""
    rng = random.Random(seed)
    scratch = graph.copy()
    next_new = 1000
    updates = []
    for _ in range(length):
        roll = rng.random()
        edges = scratch.edge_list()
        if roll < 0.35 and len(edges) > scratch.num_vertices:
            u, v = rng.choice(edges)
            updates.append(EdgeUpdate.removal(u, v))
            scratch.remove_edge(u, v)
        elif roll < 0.35 + new_vertex_probability:
            u = rng.choice(scratch.vertex_list())
            updates.append(EdgeUpdate.addition(u, next_new))
            scratch.add_edge(u, next_new)
            next_new += 1
        else:
            while True:
                u, v = rng.sample(scratch.vertex_list(), 2)
                if not scratch.has_edge(u, v):
                    break
            updates.append(EdgeUpdate.addition(u, v))
            scratch.add_edge(u, v)
    return updates


def assert_matches_serial(graph, updates, batch_size, store_factory=None):
    serial = IncrementalBetweenness(graph)
    for update in updates:
        serial.apply(update)
    store = store_factory() if store_factory else None
    batched = IncrementalBetweenness(graph, store=store)
    for chunk in batches(updates, batch_size):
        batched.apply_updates(chunk)
    assert_scores_equal(
        batched.vertex_betweenness(), serial.vertex_betweenness(), TOLERANCE, "vertex"
    )
    assert_scores_equal(
        batched.edge_betweenness(), serial.edge_betweenness(), TOLERANCE, "edge"
    )
    # The score-key sets must agree exactly, not just within tolerance.
    assert set(batched.edge_betweenness()) == set(serial.edge_betweenness())
    reference = brandes_betweenness(batched.graph)
    assert_scores_equal(
        batched.vertex_betweenness(), reference.vertex_scores, TOLERANCE, "brandes"
    )


class TestBatchedEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("batch_size", [2, 5, 16])
    def test_random_sequences(self, seed, batch_size):
        graph = random_connected_graph(16, 0.12, seed=seed)
        updates = random_update_sequence(graph, 14, seed=seed * 7 + 1)
        assert_matches_serial(graph, updates, batch_size)

    def test_batch_of_one_equals_serial(self):
        graph = random_connected_graph(12, 0.2, seed=3)
        updates = random_update_sequence(graph, 8, seed=9)
        assert_matches_serial(graph, updates, batch_size=1)

    def test_whole_stream_as_single_batch(self):
        graph = random_connected_graph(14, 0.15, seed=5)
        updates = random_update_sequence(graph, 12, seed=11)
        assert_matches_serial(graph, updates, batch_size=len(updates))

    def test_disk_store(self):
        graph = random_connected_graph(12, 0.15, seed=8)
        updates = random_update_sequence(graph, 10, seed=21)
        assert_matches_serial(
            graph, updates, 4, store_factory=lambda: DiskBDStore(graph.vertex_list())
        )

    def test_add_then_remove_same_edge_in_batch(self, cycle6):
        framework = IncrementalBetweenness(cycle6)
        framework.apply_updates(
            [EdgeUpdate.addition(0, 3), EdgeUpdate.removal(0, 3)]
        )
        reference = brandes_betweenness(cycle6)
        assert_scores_equal(
            framework.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )
        assert (0, 3) not in framework.edge_betweenness()

    def test_remove_then_readd_same_edge_in_batch(self, two_triangles_bridge):
        framework = IncrementalBetweenness(two_triangles_bridge)
        framework.apply_updates(
            [EdgeUpdate.removal(2, 3), EdgeUpdate.addition(2, 3)]
        )
        reference = brandes_betweenness(two_triangles_bridge)
        assert_scores_equal(
            framework.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )
        assert_scores_equal(
            framework.edge_betweenness(), reference.edge_scores, TOLERANCE
        )

    def test_new_vertex_chain_in_one_batch(self, path5):
        framework = IncrementalBetweenness(path5)
        framework.apply_updates(
            [
                EdgeUpdate.addition(4, 100),
                EdgeUpdate.addition(100, 101),
                EdgeUpdate.addition(101, 0),
            ]
        )
        reference = brandes_betweenness(framework.graph)
        assert_scores_equal(
            framework.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )
        assert framework.num_sources == 7


class TestBatchedBookkeeping:
    def test_empty_batch_is_a_no_op(self, cycle6):
        framework = IncrementalBetweenness(cycle6)
        before = framework.vertex_betweenness()
        result = framework.apply_updates([])
        assert result.num_updates == 0
        assert framework.vertex_betweenness() == before

    def test_invalid_update_leaves_state_untouched(self, cycle6):
        framework = IncrementalBetweenness(cycle6)
        before_scores = framework.vertex_betweenness()
        before_edges = set(framework.graph.edges())
        with pytest.raises(UpdateError):
            framework.apply_updates(
                [EdgeUpdate.addition(0, 3), EdgeUpdate.addition(0, 1)]  # 0-1 exists
            )
        assert framework.vertex_betweenness() == before_scores
        assert set(framework.graph.edges()) == before_edges

    def test_duplicate_addition_within_batch_rejected(self, cycle6):
        framework = IncrementalBetweenness(cycle6)
        with pytest.raises(UpdateError):
            framework.apply_updates(
                [EdgeUpdate.addition(0, 2), EdgeUpdate.addition(2, 0)]
            )

    def test_adopt_rejected_on_unrestricted_instance(self, cycle6):
        framework = IncrementalBetweenness(cycle6)
        with pytest.raises(UpdateError):
            framework.apply_updates([EdgeUpdate.addition(0, 99)], adopt=[99])

    def test_adopt_of_unknown_vertex_rejected(self, cycle6):
        framework = IncrementalBetweenness(cycle6, sources=[0, 1])
        with pytest.raises(UpdateError):
            framework.apply_updates([EdgeUpdate.addition(0, 2)], adopt=[99])
        assert 99 not in framework.store

    def test_statistics_match_serial_path(self):
        graph = random_connected_graph(15, 0.15, seed=2)
        updates = random_update_sequence(graph, 9, seed=4, new_vertex_probability=0.0)
        serial = IncrementalBetweenness(graph)
        serial_results = [serial.apply(update) for update in updates]
        batched = IncrementalBetweenness(graph)
        batch_result = batched.apply_updates(updates)
        assert batch_result.num_updates == len(updates)
        for ours, theirs in zip(batch_result.results, serial_results):
            assert ours.case_counts == theirs.case_counts
            assert ours.sources_processed == theirs.sources_processed
            assert ours.sources_skipped == theirs.sources_skipped
            assert ours.affected_vertices == theirs.affected_vertices

    def test_loads_amortized_across_batch(self):
        graph = random_connected_graph(20, 0.1, seed=6)
        updates = random_update_sequence(graph, 12, seed=13, new_vertex_probability=0.0)
        one_by_one = IncrementalBetweenness(graph)
        loads_serial = sum(
            one_by_one.apply_updates(chunk).sources_loaded
            for chunk in batches(updates, 1)
        )
        batched = IncrementalBetweenness(graph)
        loads_batched = batched.apply_updates(updates).sources_loaded
        assert loads_batched <= loads_serial
        assert_scores_equal(
            batched.vertex_betweenness(), one_by_one.vertex_betweenness(), TOLERANCE
        )

    def test_timing_recorded(self, cycle6):
        framework = IncrementalBetweenness(cycle6)
        result = framework.apply_updates([EdgeUpdate.addition(0, 2)])
        assert result.elapsed_seconds is not None
        assert result.elapsed_seconds >= 0.0
        assert result.seconds_per_update == pytest.approx(result.elapsed_seconds)


class TestBatchesHelper:
    def test_chunks_preserve_order(self):
        updates = [EdgeUpdate.addition(i, i + 1) for i in range(7)]
        chunks = list(batches(updates, 3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 1]
        assert [u for chunk in chunks for u in chunk] == updates

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(batches([], 0))


class TestFromSourceData:
    def test_rebuilds_scores_from_snapshot(self):
        graph = random_connected_graph(14, 0.15, seed=17)
        original = IncrementalBetweenness(graph)
        clone = IncrementalBetweenness.from_source_data(
            graph, original.store.snapshot(), restricted=False
        )
        assert_scores_equal(
            clone.vertex_betweenness(), original.vertex_betweenness(), TOLERANCE
        )
        assert_scores_equal(
            clone.edge_betweenness(), original.edge_betweenness(), TOLERANCE
        )
        # The clone must keep evolving correctly.
        clone.add_edge(0, 13) if not clone.graph.has_edge(0, 13) else clone.remove_edge(0, 13)
        reference = brandes_betweenness(clone.graph)
        assert_scores_equal(
            clone.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )

    def test_snapshot_is_independent_of_the_original(self):
        graph = random_connected_graph(15, 0.25, seed=23)
        original = IncrementalBetweenness(graph)
        clone = IncrementalBetweenness.from_source_data(
            graph, original.store.snapshot(), restricted=False
        )
        # Applying the same removal to both must not crash or cross-talk:
        # a snapshot sharing live records with the original would make the
        # second instance repair an already-repaired BD[s].
        u, v = graph.edge_list()[3]
        original.remove_edge(u, v)
        clone.remove_edge(u, v)
        reference = brandes_betweenness(clone.graph)
        assert_scores_equal(
            clone.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )
        assert_scores_equal(
            original.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )

    def test_partial_snapshot_gives_partial_scores(self):
        graph = random_connected_graph(10, 0.2, seed=19)
        original = IncrementalBetweenness(graph)
        half = list(graph.vertices())[:5]
        snapshot = {s: original.store.get(s) for s in half}
        partial = IncrementalBetweenness.from_source_data(graph, snapshot)
        reference = brandes_betweenness(graph, sources=half)
        assert_scores_equal(
            partial.vertex_betweenness(), reference.vertex_scores, TOLERANCE
        )
        assert_scores_equal(
            partial.edge_betweenness(), reference.edge_scores, TOLERANCE
        )
