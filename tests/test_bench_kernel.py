"""Smoke tests for ``benchmarks/bench_kernel.py``'s per-phase reporting.

The benchmark drives acceptance (speedup floors asserted in CI), so this
suite only pins its *report shape* on a tiny configuration: every phase
key the flat kernel reports must be present, non-negative, and together
account for (approximately) the whole measured sweep — the contract the
cross-PR performance trajectory in ``BENCH_kernel.json`` relies on.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_kernel", REPO_ROOT / "benchmarks" / "bench_kernel.py"
)
bench_kernel = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_kernel)

TINY = {
    "vertices": 60,
    "directed_vertices": 40,
    "extra_edges_per_vertex": 2,
    "updates": 8,
    "batch_size": 4,
}


@pytest.fixture(scope="module")
def tiny_report():
    graph = bench_kernel.build_graph(
        TINY["vertices"], TINY["extra_edges_per_vertex"], seed=11
    )
    stream = bench_kernel.build_stream(graph, TINY["updates"], seed=13)
    return bench_kernel.bench_orientation(graph, stream, TINY["batch_size"])


def test_phase_keys_present_and_nonnegative(tiny_report):
    phases = tiny_report["batched_updates_memory"]["phases_seconds"]
    assert set(phases) == set(bench_kernel.PHASE_KEYS) | {"other"}
    assert all(value >= 0.0 for value in phases.values())
    # The cohort sweep always classifies, repairs, and accumulates.
    assert phases["classify"] > 0.0
    assert phases["repair"] > 0.0
    assert phases["accumulate"] > 0.0


def test_phases_sum_to_measured_sweep(tiny_report):
    sweep = tiny_report["batched_updates_memory"]
    total = sweep["arrays_seconds"]
    accounted = sum(sweep["phases_seconds"].values())
    # "other" is defined as the non-negative remainder, so the sum can only
    # exceed the wall total through clock skew between nested timers.
    assert accounted == pytest.approx(total, rel=0.05, abs=1e-4)


def test_report_is_bit_identical(tiny_report):
    assert tiny_report["bootstrap"]["bit_identical"] is True
    assert tiny_report["batched_updates_memory"]["bit_identical"] is True
