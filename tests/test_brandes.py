"""Tests for the static Brandes implementations.

The reference values come from Definitions 2.1/2.2 (ordered-pair counting,
no halving on undirected graphs) and from the brute-force path enumerator.
"""

import pytest

from repro.algorithms import brandes_betweenness, brandes_vertex_betweenness, brute_force_betweenness, edge_betweenness, vertex_betweenness
from repro.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph import Graph

from tests.helpers import random_graph
from tests.helpers import assert_scores_equal


class TestKnownValues:
    def test_path_graph_vertex_scores(self, path5):
        scores = vertex_betweenness(path5)
        # Middle vertex of a 5-path lies on 2*(2*3)/... ordered pairs: (0,1,..4)
        assert scores[2] == pytest.approx(8.0)
        assert scores[1] == pytest.approx(6.0)
        assert scores[0] == pytest.approx(0.0)

    def test_star_graph_center(self):
        g = star_graph(5)
        scores = vertex_betweenness(g)
        # Center lies on every ordered pair of distinct leaves: 5*4 = 20.
        assert scores[0] == pytest.approx(20.0)
        assert all(scores[leaf] == pytest.approx(0.0) for leaf in range(1, 6))

    def test_complete_graph_all_zero(self):
        scores = vertex_betweenness(complete_graph(5))
        assert all(value == pytest.approx(0.0) for value in scores.values())

    def test_cycle_graph_symmetry(self):
        scores = vertex_betweenness(cycle_graph(6))
        values = list(scores.values())
        assert all(value == pytest.approx(values[0]) for value in values)

    def test_path_graph_edge_scores(self, path5):
        scores = edge_betweenness(path5)
        # The middle edge (1,2)/(2,3) carries 2*(2*3) = 12 ordered-pair paths.
        assert scores[(1, 2)] == pytest.approx(12.0)
        assert scores[(0, 1)] == pytest.approx(8.0)

    def test_bridge_edge_has_maximum_betweenness(self, two_triangles_bridge):
        scores = edge_betweenness(two_triangles_bridge)
        assert max(scores, key=scores.get) == (2, 3)
        # Bridge carries all 2*3*3 = 18 ordered cross pairs.
        assert scores[(2, 3)] == pytest.approx(18.0)

    def test_disconnected_graph_scores(self, disconnected_graph):
        scores = vertex_betweenness(disconnected_graph)
        assert scores[11] == pytest.approx(2.0)
        assert scores[1] == pytest.approx(0.0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_graphs_match_brute_force(self, seed):
        graph = random_graph(8, 0.3, seed)
        expected_vertex, expected_edge = brute_force_betweenness(graph)
        result = brandes_betweenness(graph)
        assert_scores_equal(result.vertex_scores, expected_vertex, label="vertex")
        assert_scores_equal(result.edge_scores, expected_edge, label="edge")

    def test_directed_graph_matches_brute_force(self):
        g = Graph(directed=True)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]:
            g.add_edge(u, v)
        expected_vertex, expected_edge = brute_force_betweenness(g)
        result = brandes_betweenness(g)
        assert_scores_equal(result.vertex_scores, expected_vertex, label="vertex")
        assert_scores_equal(result.edge_scores, expected_edge, label="edge")


class TestVariantsAgree:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_predecessor_free_matches_predecessor_variant(self, seed):
        graph = random_graph(15, 0.2, seed)
        with_preds = brandes_betweenness(graph, keep_predecessors=True)
        without = brandes_betweenness(graph, keep_predecessors=False)
        assert_scores_equal(with_preds.vertex_scores, without.vertex_scores)
        assert_scores_equal(with_preds.edge_scores, without.edge_scores)

    def test_brandes_vertex_betweenness_wrapper(self, path5):
        assert brandes_vertex_betweenness(path5)[2] == pytest.approx(8.0)


class TestSourceData:
    def test_source_data_collected_on_request(self, path5):
        result = brandes_betweenness(path5, collect_source_data=True)
        assert set(result.source_data) == set(path5.vertices())
        data = result.source_data[0]
        assert data.distance[4] == 4
        assert data.sigma[4] == 1

    def test_source_data_absent_by_default(self, path5):
        assert brandes_betweenness(path5).source_data is None

    def test_dependency_values_on_path(self, path5):
        data = brandes_betweenness(path5, collect_source_data=True).source_data[0]
        # From source 0 on a path, delta(1) = 3, delta(2) = 2, delta(3) = 1.
        assert data.delta[1] == pytest.approx(3.0)
        assert data.delta[3] == pytest.approx(1.0)

    def test_partial_sources_sum_to_full(self, two_triangles_bridge):
        vertices = list(two_triangles_bridge.vertices())
        half_a = brandes_betweenness(two_triangles_bridge, sources=vertices[:3])
        half_b = brandes_betweenness(two_triangles_bridge, sources=vertices[3:])
        full = brandes_betweenness(two_triangles_bridge)
        combined = {
            v: half_a.vertex_scores[v] + half_b.vertex_scores[v] for v in vertices
        }
        assert_scores_equal(combined, full.vertex_scores)
