"""Checkpoint/resume of the framework and file-seeded parallel workers."""

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.exceptions import ConfigurationError, StoreCorruptedError
from repro.graph import Graph
from repro.parallel import ProcessParallelBetweenness
from repro.storage import DiskBDStore

from tests.helpers import assert_scores_equal, random_connected_graph


def absent_edges(graph):
    """Vertex pairs not currently connected, in deterministic order."""
    vertices = sorted(graph.vertices())
    return [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1 :]
        if not graph.has_edge(u, v)
    ]


@pytest.fixture
def evolving_case(tmp_path):
    """A DO framework that streamed some updates, plus edges still absent."""
    graph = random_connected_graph(14, 0.15, seed=11)
    spare = absent_edges(graph)
    store = DiskBDStore(graph.vertex_list(), path=tmp_path / "bd.bin")
    framework = IncrementalBetweenness(graph, store=store)
    framework.add_edge(*spare[0])
    framework.remove_edge(*sorted(graph.edges())[0])
    framework.add_edge(*spare[1])
    return framework, tmp_path, spare[2:]


class TestCheckpointResume:
    def test_resume_restores_exact_scores(self, evolving_case):
        framework, tmp_path, _ = evolving_case
        vertex_scores = framework.vertex_betweenness()
        edge_scores = framework.edge_betweenness()
        framework.checkpoint(tmp_path / "ck.bin")
        framework.store.close()

        resumed = IncrementalBetweenness.resume(tmp_path / "ck.bin")
        try:
            assert resumed.vertex_betweenness() == vertex_scores
            assert resumed.edge_betweenness() == edge_scores
            assert resumed.num_sources == framework.num_sources
        finally:
            resumed.store.close()

    def test_resumed_instance_stays_exact_under_updates(self, evolving_case):
        framework, tmp_path, spare = evolving_case
        framework.checkpoint(tmp_path / "ck.bin")
        framework.store.close()
        resumed = IncrementalBetweenness.resume(tmp_path / "ck.bin")
        try:
            resumed.add_edge(*spare[0])
            resumed.remove_edge(*sorted(resumed.graph.edges())[0])
            reference = brandes_betweenness(resumed.graph)
            assert_scores_equal(resumed.vertex_betweenness(), reference.vertex_scores)
            assert_scores_equal(resumed.edge_betweenness(), reference.edge_scores)
        finally:
            resumed.store.close()

    def test_memory_store_checkpoint_embeds_snapshot(self, tmp_path):
        graph = random_connected_graph(10, 0.2, seed=3)
        spare = absent_edges(graph)
        framework = IncrementalBetweenness(graph)  # in-memory store
        framework.add_edge(*spare[0])
        framework.checkpoint(tmp_path / "mem.ck")
        resumed = IncrementalBetweenness.resume(tmp_path / "mem.ck")
        assert resumed.vertex_betweenness() == framework.vertex_betweenness()
        resumed.add_edge(*spare[1])
        assert_scores_equal(
            resumed.vertex_betweenness(),
            brandes_betweenness(resumed.graph).vertex_scores,
        )

    def test_stale_checkpoint_is_refused(self, evolving_case):
        framework, tmp_path, spare = evolving_case
        framework.checkpoint(tmp_path / "ck.bin")
        # Mutate the store *after* the checkpoint: the sidecar is now stale.
        framework.add_edge(*spare[0])
        framework.store.close()
        with pytest.raises(ConfigurationError):
            IncrementalBetweenness.resume(tmp_path / "ck.bin")

    def test_refreshed_checkpoint_is_accepted_again(self, evolving_case):
        framework, tmp_path, spare = evolving_case
        framework.checkpoint(tmp_path / "ck.bin")
        framework.add_edge(*spare[0])
        framework.checkpoint(tmp_path / "ck.bin")  # refresh after mutating
        framework.store.close()
        resumed = IncrementalBetweenness.resume(tmp_path / "ck.bin")
        try:
            assert_scores_equal(
                resumed.vertex_betweenness(),
                brandes_betweenness(resumed.graph).vertex_scores,
            )
        finally:
            resumed.store.close()

    def test_corrupted_checkpoint_is_rejected(self, evolving_case):
        framework, tmp_path, _ = evolving_case
        framework.checkpoint(tmp_path / "ck.bin")
        framework.store.close()
        blob = bytearray((tmp_path / "ck.bin").read_bytes())
        blob[-3] ^= 0x55
        (tmp_path / "ck.bin").write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptedError):
            IncrementalBetweenness.resume(tmp_path / "ck.bin")


class TestFromStore:
    def test_partition_store_is_detected_as_restricted(self, tmp_path):
        graph = random_connected_graph(8, 0.2, seed=5)
        vertices = graph.vertex_list()
        partition = vertices[: len(vertices) // 2]
        store = DiskBDStore(vertices, path=tmp_path / "bd.bin", sources=partition)
        worker = IncrementalBetweenness(graph, store=store, sources=partition)
        worker.add_edge(*absent_edges(graph)[0])
        graph_after = worker.graph.copy()
        store.close()

        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        resumed = IncrementalBetweenness.from_store(graph_after, reopened)
        try:
            assert resumed._restricted is True
            assert_scores_equal(
                resumed.vertex_betweenness(), worker.vertex_betweenness()
            )
            assert_scores_equal(resumed.edge_betweenness(), worker.edge_betweenness())
        finally:
            reopened.close()


class TestFileSeededExecutor:
    def test_workers_seeded_from_store_file_match_serial(self, tmp_path):
        graph = random_connected_graph(12, 0.2, seed=9)
        store = DiskBDStore(graph.vertex_list(), path=tmp_path / "bd.bin")
        serial = IncrementalBetweenness(graph, store=store)
        store.flush()

        spare = absent_edges(graph)
        updates = [
            EdgeUpdate.addition(*spare[0]),
            EdgeUpdate.addition(*spare[1]),
            EdgeUpdate.removal(*spare[0]),
        ]
        with ProcessParallelBetweenness(
            graph, num_workers=2, source_store_path=tmp_path / "bd.bin"
        ) as cluster:
            cluster.apply_batch(updates)
            parallel_vertex, parallel_edge = cluster.betweenness()
        serial.apply_updates(updates)
        assert_scores_equal(serial.vertex_betweenness(), parallel_vertex)
        assert_scores_equal(serial.edge_betweenness(), parallel_edge)
        store.close()

    def test_snapshot_and_store_path_are_mutually_exclusive(self, tmp_path):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(ConfigurationError):
            ProcessParallelBetweenness(
                graph,
                num_workers=1,
                source_data={},
                source_store_path=tmp_path / "bd.bin",
            )

    def test_store_file_missing_sources_fails_loudly(self, tmp_path):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        partial = DiskBDStore(
            graph.vertex_list(), path=tmp_path / "bd.bin", sources=[0, 1]
        )
        partial.close()
        with pytest.raises(Exception):
            with ProcessParallelBetweenness(
                graph, num_workers=2, source_store_path=tmp_path / "bd.bin"
            ):
                pass


class TestShardCheckpointStaleness:
    """Checkpoint *generations* across shards (the sharded analogue of
    ``test_stale_checkpoint_is_refused``).

    The contract: a shard checkpoint older than the coordinator's batch
    cursor is either replayed forward from the retained batch log (live
    recovery) or refused (restart, where no log exists) — it is **never**
    silently mixed with fresher shards.
    """

    def _run_rounds(self, tmp_path, extra_batches=0):
        from repro.parallel import ShardCoordinator
        from repro.storage.shard import ShardLayout

        graph = random_connected_graph(10, 0.2, seed=21)
        spare = absent_edges(graph)
        layout = ShardLayout(
            root=tmp_path / "shards", num_shards=2, checkpoint_every=2
        )
        coordinator = ShardCoordinator(graph, layout)
        for u, v in spare[:2]:
            coordinator.add_edge(u, v)  # round committed at cursor 2
        return coordinator, layout, spare[2:]

    def test_batch_cursor_and_shard_meta_round_trip(self, evolving_case):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        framework, tmp_path, _ = evolving_case
        meta = {"shard_id": 1, "num_shards": 4, "source_order": [3, 0, 7]}
        checkpoint = framework.build_checkpoint(batch_cursor=7, shard_meta=meta)
        save_checkpoint(tmp_path / "shard.ck", checkpoint)
        loaded = load_checkpoint(tmp_path / "shard.ck")
        assert loaded.batch_cursor == 7
        assert loaded.shard_meta == meta
        framework.store.close()

    def test_older_sidecar_is_replayed_forward_during_live_recovery(
        self, tmp_path
    ):
        """Live recovery: the dead shard's sidecar lags the cursor by one
        batch, and the coordinator replays exactly that gap."""
        import os
        import signal

        coordinator, layout, spare = self._run_rounds(tmp_path)
        events = []
        coordinator.notify = lambda kind, **fields: events.append((kind, fields))
        try:
            # One more batch, below the cadence: sidecars stay at cursor 2.
            coordinator.add_edge(*spare[0])
            os.kill(coordinator._handles[1].process.pid, signal.SIGKILL)
            coordinator._handles[1].process.join(timeout=10.0)
            coordinator.add_edge(*spare[1])
            recoveries = [f for kind, f in events if kind == "shard_recovered"]
            assert [r["replayed_batches"] for r in recoveries] == [1]
        finally:
            coordinator.close(checkpoint=False)

    def test_stale_sidecar_is_refused_on_restart(self, tmp_path):
        """Restart: one shard's sidecar is from an older round than the
        manifest; with no replay log the root must be refused outright."""
        import shutil

        from repro.parallel import ShardCoordinator

        coordinator, layout, spare = self._run_rounds(tmp_path)
        stale = tmp_path / "stale-sidecar.bin"
        shutil.copy(layout.checkpoint_path(0), stale)  # cursor 2
        for u, v in spare[:2]:
            coordinator.add_edge(u, v)  # next round: cursor 4
        coordinator.close()
        shutil.copy(stale, layout.checkpoint_path(0))
        with pytest.raises(ConfigurationError, match="refusing to mix"):
            ShardCoordinator.resume(layout.root)

    def test_leading_sidecars_are_refused_on_restart(self, tmp_path):
        """The opposite skew — a manifest older than every sidecar (say a
        restored backup of the root's manifest only) — is just as mixed."""
        from dataclasses import replace

        from repro.parallel import ShardCoordinator
        from repro.storage.shard import load_manifest

        coordinator, layout, spare = self._run_rounds(tmp_path)
        for u, v in spare[:2]:
            coordinator.add_edge(u, v)
        coordinator.close()
        manifest = load_manifest(layout.root)
        layout.write_manifest(replace(manifest, batch_cursor=manifest.batch_cursor - 2))
        with pytest.raises(ConfigurationError, match="refusing to mix"):
            ShardCoordinator.resume(layout.root)

    def test_mutated_store_generation_is_refused_on_restart(self, tmp_path):
        """A shard store touched behind its sidecar's back (generation moved
        on) must fail the resume instead of seeding a worker from it."""
        from repro.core.checkpoint import load_checkpoint
        from repro.exceptions import UpdateError
        from repro.parallel import ShardCoordinator

        coordinator, layout, _ = self._run_rounds(tmp_path)
        coordinator.close()
        sidecar = load_checkpoint(layout.checkpoint_path(0))
        tampered = DiskBDStore.open(sidecar.store_path)
        source = next(iter(tampered.sources()))
        tampered.put(tampered.get(source))
        tampered.flush()  # bumps the generation past the sidecar's
        tampered.close()
        with pytest.raises(UpdateError, match="generation"):
            ShardCoordinator.resume(layout.root)
