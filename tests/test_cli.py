"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--dataset", "nope"])


class TestCommands:
    def test_datasets_lists_all_stand_ins(self, capsys):
        code, out = run_cli(capsys, "datasets")
        assert code == 0
        assert "facebook" in out and "synthetic-1k" in out

    def test_related_work_table(self, capsys):
        code, out = run_cli(capsys, "related-work")
        assert code == 0
        assert "This work" in out

    def test_profile_row(self, capsys):
        code, out = run_cli(capsys, "profile", "--dataset", "synthetic-1k", "--vertices", "60")
        assert code == 0
        assert "synthetic-1k" in out
        assert "AD" in out

    def test_speedup_addition(self, capsys):
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "60",
            "--edges", "2", "--kind", "add", "--variant", "MO",
        )
        assert code == 0
        assert "per-edge speedups" in out

    def test_speedup_removal(self, capsys):
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "60",
            "--edges", "2", "--kind", "remove",
        )
        assert code == 0
        assert "remove" in out

    def test_online_replay(self, capsys):
        code, out = run_cli(
            capsys,
            "online", "--dataset", "synthetic-1k", "--vertices", "60",
            "--edges", "4", "--mappers", "1,5",
        )
        assert code == 0
        assert "missed" in out
        assert out.count("synthetic-1k") >= 2

    def test_communities(self, capsys):
        code, out = run_cli(
            capsys,
            "communities", "--dataset", "synthetic-1k", "--vertices", "50",
            "--removals", "5",
        )
        assert code == 0
        assert "modularity" in out

    def test_proxies(self, capsys):
        code, out = run_cli(
            capsys, "proxies", "--dataset", "synthetic-1k", "--vertices", "50"
        )
        assert code == 0
        assert "degree" in out and "closeness" in out

    def test_speedup_do_with_store_and_resume(self, capsys, tmp_path):
        store = tmp_path / "bd.bin"
        checkpoint = tmp_path / "ck.bin"
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--variant", "DO",
            "--store-path", str(store), "--checkpoint", str(checkpoint),
        )
        assert code == 0
        assert store.exists() and checkpoint.exists()

        code, out = run_cli(
            capsys,
            "resume", "--checkpoint", str(checkpoint), "--edges", "2",
            "--verify",
        )
        assert code == 0
        assert "resumed from" in out
        assert "match" in out and "MISMATCH" not in out
        assert "checkpoint refreshed" in out

    def test_speedup_store_path_requires_do(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
                "--edges", "2", "--variant", "MO",
                "--store-path", str(tmp_path / "bd.bin"),
            )

    def test_speedup_refuses_existing_store_file(self, capsys, tmp_path):
        from repro.exceptions import StoreExistsError

        store = tmp_path / "bd.bin"
        args = (
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--variant", "DO", "--store-path", str(store),
        )
        code, _ = run_cli(capsys, *args)
        assert code == 0 and store.exists()
        with pytest.raises(StoreExistsError):
            run_cli(capsys, *args)

    def test_speedup_arrays_backend(self, capsys):
        """Regression: the PR-3 arrays kernel is reachable from the CLI."""
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "60",
            "--edges", "2", "--kind", "add", "--backend", "arrays",
        )
        assert code == 0
        assert "per-edge speedups" in out

    def test_speedup_do_arrays_backend_with_resume(self, capsys, tmp_path):
        store = tmp_path / "bd.bin"
        checkpoint = tmp_path / "ck.bin"
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--variant", "DO", "--backend", "arrays",
            "--store-path", str(store), "--checkpoint", str(checkpoint),
        )
        assert code == 0
        assert store.exists() and checkpoint.exists()

        code, out = run_cli(
            capsys,
            "resume", "--checkpoint", str(checkpoint), "--edges", "2",
            "--verify", "--backend", "arrays",
        )
        assert code == 0
        assert "match" in out and "MISMATCH" not in out

    def test_online_simulated_arrays_backend(self, capsys):
        code, out = run_cli(
            capsys,
            "online", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--mappers", "1", "--backend", "arrays",
        )
        assert code == 0
        assert "missed" in out

    def test_console_entry_point_accepts_backend(self):
        """`python -m repro.cli` (the console script body) takes --backend."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.cli",
                "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
                "--edges", "1", "--backend", "arrays",
            ],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "per-edge speedups" in proc.stdout

    def test_invalid_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
                "--backend", "numpy",
            )

    def test_online_store_path_requires_workers(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "online", "--dataset", "synthetic-1k", "--vertices", "40",
                "--edges", "2", "--mappers", "1",
                "--store-path", str(tmp_path / "bd.bin"),
            )


class TestVersionAndConfig:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_config_file_supplies_defaults(self, capsys, tmp_path):
        from repro.api import BetweennessConfig

        config_path = tmp_path / "run.json"
        BetweennessConfig(backend="arrays", batch_size=2).save(config_path)
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--config", str(config_path),
        )
        assert code == 0
        # The batch column reflects the config file's batch_size.
        assert "| 2 " in out or "| 2|" in out.replace(" ", "")

    def test_flags_override_config_file(self, capsys, tmp_path):
        from repro.api import BetweennessConfig

        config_path = tmp_path / "run.json"
        BetweennessConfig(batch_size=4).save(config_path)
        code, out = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--config", str(config_path), "--batch-size", "1",
        )
        assert code == 0
        assert "| 4 " not in out

    def test_config_file_store_uri_is_used(self, capsys, tmp_path):
        from repro.api import BetweennessConfig

        store = tmp_path / "bd.bin"
        config_path = tmp_path / "run.json"
        BetweennessConfig(store=f"disk:{store}").save(config_path)
        code, _ = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "1", "--config", str(config_path),
        )
        assert code == 0
        assert store.exists()

    def test_bad_config_file_rejected(self, capsys, tmp_path):
        from repro.exceptions import ConfigurationError

        config_path = tmp_path / "bad.json"
        config_path.write_text('{"backend": "numpy"}')
        with pytest.raises(ConfigurationError):
            run_cli(
                capsys,
                "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
                "--config", str(config_path),
            )

    def test_resume_needs_no_flags_after_arrays_checkpoint(self, capsys, tmp_path):
        """The checkpoint-embedded config drives resume: no --backend needed."""
        store = tmp_path / "bd.bin"
        checkpoint = tmp_path / "ck.bin"
        code, _ = run_cli(
            capsys,
            "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--variant", "DO", "--backend", "arrays",
            "--store-path", str(store), "--checkpoint", str(checkpoint),
        )
        assert code == 0

        code, out = run_cli(
            capsys, "resume", "--checkpoint", str(checkpoint), "--edges", "2",
            "--verify",
        )
        assert code == 0
        assert "backend arrays" in out
        assert "match" in out and "MISMATCH" not in out

    def test_speedup_rejects_parallel_config(self, capsys, tmp_path):
        from repro.api import BetweennessConfig
        from repro.exceptions import ConfigurationError

        config_path = tmp_path / "run.json"
        BetweennessConfig(executor="process", workers=2).save(config_path)
        with pytest.raises(ConfigurationError, match="serial executor"):
            run_cli(
                capsys,
                "speedup", "--dataset", "synthetic-1k", "--vertices", "40",
                "--edges", "1", "--config", str(config_path),
            )

    def test_online_simulate_honours_config_store_and_mappers(
        self, capsys, tmp_path
    ):
        from repro.api import BetweennessConfig

        config_path = tmp_path / "run.json"
        BetweennessConfig(executor="mapreduce", workers=3, store="disk://").save(
            config_path
        )
        code, out = run_cli(
            capsys,
            "online", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--config", str(config_path),
        )
        assert code == 0
        # One simulated row, at the config's worker count.
        assert out.count("synthetic-1k") == 1
        assert "| 3 " in out

    def test_online_accepts_store_uri(self, capsys):
        code, out = run_cli(
            capsys,
            "online", "--dataset", "synthetic-1k", "--vertices", "40",
            "--edges", "2", "--workers", "2", "--store", "memory://",
        )
        assert code == 0
        assert "(real)" in out
