"""Tests for the per-source update classification (Section 3.1 cases)."""

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, UpdateCase, classify
from repro.graph import Graph


def source_data(graph, source):
    return brandes_betweenness(graph, collect_source_data=True).source_data[source]


class TestAdditionClassification:
    def test_same_distance_endpoints_skip(self):
        # From source 0, vertices 1 and 2 are both at distance 1.
        g = Graph.from_edges([(0, 1), (0, 2)])
        data = source_data(g, 0)
        g2 = g.copy()
        g2.add_edge(1, 2)
        outcome = classify(g2, data, EdgeUpdate.addition(1, 2))
        assert outcome.case is UpdateCase.SKIP
        assert outcome.distance_difference == 0

    def test_distance_difference_one_is_non_structural(self, path5):
        data = source_data(path5, 0)
        g2 = path5.copy()
        g2.add_edge(1, 2) if not g2.has_edge(1, 2) else None
        # Add an edge between levels 1 and 2 via a new chord (0-1-2 path exists;
        # use endpoints 0 (level 0) and an adjacent-level vertex 1? that edge
        # exists). Use vertices 2 (level 2) and 3 (level 3): already adjacent.
        # Instead build a fresh graph where the new edge spans one level.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3)])
        data = source_data(g, 0)
        g2 = g.copy()
        g2.add_edge(2, 3)  # d(2)=1, d(3)=2 -> dd == 1
        outcome = classify(g2, data, EdgeUpdate.addition(2, 3))
        assert outcome.case is UpdateCase.ADD_NO_STRUCTURE
        assert outcome.high == 2 and outcome.low == 3
        assert outcome.distance_difference == 1

    def test_large_distance_difference_is_structural(self, path5):
        data = source_data(path5, 0)
        g2 = path5.copy()
        g2.add_edge(0, 4)  # d(0)=0, d(4)=4 -> dd == 4
        outcome = classify(g2, data, EdgeUpdate.addition(0, 4))
        assert outcome.case is UpdateCase.ADD_STRUCTURAL
        assert outcome.high == 0 and outcome.low == 4
        assert outcome.distance_difference == 4

    def test_previously_unreachable_endpoint_is_structural(self, disconnected_graph):
        data = source_data(disconnected_graph, 0)
        g2 = disconnected_graph.copy()
        g2.add_edge(2, 10)
        outcome = classify(g2, data, EdgeUpdate.addition(2, 10))
        assert outcome.case is UpdateCase.ADD_STRUCTURAL
        assert outcome.high == 2 and outcome.low == 10
        assert outcome.distance_difference is None

    def test_both_endpoints_unreachable_skip(self, disconnected_graph):
        data = source_data(disconnected_graph, 0)
        g2 = disconnected_graph.copy()
        g2.add_edge(10, 12)
        outcome = classify(g2, data, EdgeUpdate.addition(10, 12))
        assert outcome.case is UpdateCase.SKIP

    def test_endpoint_order_is_normalised(self, path5):
        data = source_data(path5, 0)
        g2 = path5.copy()
        g2.add_edge(4, 0)
        outcome = classify(g2, data, EdgeUpdate.addition(4, 0))
        assert outcome.high == 0 and outcome.low == 4


class TestRemovalClassification:
    def test_same_level_removal_skips(self):
        # Square + diagonal chord between the two level-1 vertices.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        data = source_data(g, 0)
        g2 = g.copy()
        g2.remove_edge(1, 2)
        outcome = classify(g2, data, EdgeUpdate.removal(1, 2))
        assert outcome.case is UpdateCase.SKIP

    def test_removal_with_alternative_predecessor_is_non_structural(self):
        # Vertex 3 has two predecessors (1 and 2); removing one keeps its level.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        data = source_data(g, 0)
        g2 = g.copy()
        g2.remove_edge(1, 3)
        outcome = classify(g2, data, EdgeUpdate.removal(1, 3))
        assert outcome.case is UpdateCase.REMOVE_NO_STRUCTURE
        assert outcome.high == 1 and outcome.low == 3

    def test_removal_of_only_predecessor_is_structural(self, path5):
        data = source_data(path5, 0)
        g2 = path5.copy()
        g2.remove_edge(3, 4)
        outcome = classify(g2, data, EdgeUpdate.removal(3, 4))
        assert outcome.case is UpdateCase.REMOVE_STRUCTURAL
        assert outcome.high == 3 and outcome.low == 4

    def test_removal_between_unreachable_vertices_skips(self, disconnected_graph):
        data = source_data(disconnected_graph, 0)
        g2 = disconnected_graph.copy()
        g2.remove_edge(10, 11)
        outcome = classify(g2, data, EdgeUpdate.removal(10, 11))
        assert outcome.case is UpdateCase.SKIP

    def test_cycle_removal_from_far_side(self, cycle6):
        # Removing (2, 3): from source 0, d(2)=2, d(3)=3 and 3 has another
        # predecessor (4), so the change is non-structural.
        data = source_data(cycle6, 0)
        g2 = cycle6.copy()
        g2.remove_edge(2, 3)
        outcome = classify(g2, data, EdgeUpdate.removal(2, 3))
        assert outcome.case is UpdateCase.REMOVE_NO_STRUCTURE
