"""Unit tests of the search-phase repairs (addition and removal plans).

These check the intermediate :class:`RepairPlan` artefacts directly —
distances, shortest-path counts, affected sets, pivots and disconnections —
against values recomputed from scratch, for each of the paper's structural
cases.
"""

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate
from repro.core.addition import repair_addition_same_level, repair_addition_structural
from repro.core.removal import find_drop_set, repair_removal_same_level, repair_removal_structural
from repro.graph import Graph


def bd(graph, source):
    return brandes_betweenness(graph, collect_source_data=True).source_data[source]


def fresh(graph, source):
    return brandes_betweenness(graph, collect_source_data=True).source_data[source]


class TestAdditionSameLevel:
    def test_sigma_updates_in_subdag(self):
        # 0-1, 0-2, 1-3, 3-4 ; adding (2, 3) creates a second path to 3 and 4.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (3, 4)])
        data = bd(g, 0)
        g2 = g.copy()
        g2.add_edge(2, 3)
        plan = repair_addition_same_level(g2, data, high=2, low=3)
        expected = fresh(g2, 0)
        assert plan.new_sigma[3] == expected.sigma[3] == 2
        assert plan.new_sigma[4] == expected.sigma[4] == 2
        assert plan.new_distance == {}  # no structural change
        assert plan.affected == {3, 4}

    def test_affected_set_limited_to_descendants(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 4)])
        data = bd(g, 0)
        g2 = g.copy()
        g2.add_edge(1, 4)  # d(1)=1, d(4)=2
        plan = repair_addition_same_level(g2, data, high=1, low=4)
        assert plan.affected == {4}
        assert plan.new_sigma[4] == 2


class TestAdditionStructural:
    def test_distances_and_sigma_match_recompute(self, path5):
        data = bd(path5, 0)
        g2 = path5.copy()
        g2.add_edge(0, 4)
        plan = repair_addition_structural(g2, data, high=0, low=4)
        expected = fresh(g2, 0)
        assert plan.new_distance[4] == expected.distance[4] == 1
        assert plan.new_distance[3] == expected.distance[3] == 2
        for vertex in plan.affected:
            assert plan.new_sigma[vertex] == expected.sigma[vertex]

    def test_connecting_components_discovers_whole_component(self, disconnected_graph):
        data = bd(disconnected_graph, 0)
        g2 = disconnected_graph.copy()
        g2.add_edge(2, 10)
        plan = repair_addition_structural(g2, data, high=2, low=10)
        expected = fresh(g2, 0)
        assert {10, 11, 12} <= plan.affected
        for vertex in (10, 11, 12):
            assert plan.new_distance[vertex] == expected.distance[vertex]
            assert plan.new_sigma[vertex] == expected.sigma[vertex]

    def test_sibling_becomes_child(self):
        # 0-1-2-3 plus 0-4-3: adding (0, 3) pulls 3 to level 1 and turns its
        # former siblings/predecessors into successors.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)])
        data = bd(g, 0)
        g2 = g.copy()
        g2.add_edge(0, 3)
        plan = repair_addition_structural(g2, data, high=0, low=3)
        expected = fresh(g2, 0)
        for vertex in plan.affected:
            assert plan.new_sigma[vertex] == expected.sigma[vertex]
            assert plan.new_distance.get(vertex, data.distance.get(vertex)) == expected.distance[vertex]


class TestRemovalSameLevel:
    def test_sigma_decreases_in_subdag(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        data = bd(g, 0)
        g2 = g.copy()
        g2.remove_edge(1, 3)
        plan = repair_removal_same_level(g2, data, high=1, low=3)
        expected = fresh(g2, 0)
        assert plan.new_sigma[3] == expected.sigma[3] == 1
        assert plan.new_sigma[4] == expected.sigma[4] == 1
        assert plan.removed_edge_dependency == pytest.approx(
            data.sigma[1] / data.sigma[3] * (1 + data.delta[3])
        )


class TestDropSet:
    def test_path_drop_set_is_suffix(self, path5):
        data = bd(path5, 0)
        g2 = path5.copy()
        g2.remove_edge(2, 3)
        drop = find_drop_set(g2, data, low=3)
        assert set(drop) == {3, 4}

    def test_vertex_with_alternative_parent_not_dropped(self):
        # 4 is fed both through 3 (dropped) and through 2 (kept).
        g = Graph.from_edges([(0, 1), (1, 3), (3, 4), (0, 2), (2, 4)])
        data = bd(g, 0)
        g2 = g.copy()
        g2.remove_edge(1, 3)
        drop = find_drop_set(g2, data, low=3)
        assert set(drop) == {3}

    def test_cycle_drop_set_single_vertex(self, cycle6):
        data = bd(cycle6, 0)
        g2 = cycle6.copy()
        g2.remove_edge(1, 2)
        drop = find_drop_set(g2, data, low=2)
        assert set(drop) == {2}


class TestRemovalStructural:
    def test_distances_repaired_through_pivots(self, cycle6):
        data = bd(cycle6, 0)
        g2 = cycle6.copy()
        g2.remove_edge(0, 1)
        plan = repair_removal_structural(g2, data, high=0, low=1)
        expected = fresh(g2, 0)
        assert plan.new_distance[1] == expected.distance[1] == 5
        assert not plan.disconnected
        for vertex in plan.affected:
            assert plan.new_sigma[vertex] == expected.sigma[vertex]

    def test_disconnection_detected(self, path5):
        data = bd(path5, 0)
        g2 = path5.copy()
        g2.remove_edge(2, 3)
        plan = repair_removal_structural(g2, data, high=2, low=3)
        assert sorted(plan.disconnected) == [3, 4]
        assert plan.affected == set()

    def test_partial_drop_with_reconnection(self):
        # Removing (1, 3): 3 and 5 must be re-reached through 2-4.
        g = Graph.from_edges([(0, 1), (1, 3), (3, 5), (0, 2), (2, 4), (4, 5)])
        data = bd(g, 0)
        g2 = g.copy()
        g2.remove_edge(1, 3)
        plan = repair_removal_structural(g2, data, high=1, low=3)
        expected = fresh(g2, 0)
        assert not plan.disconnected
        assert plan.new_distance[3] == expected.distance[3] == 4
        for vertex in plan.affected:
            assert plan.new_sigma[vertex] == expected.sigma[vertex]
