"""Tests for the update-stream primitives and result/statistics objects."""

import pytest

from repro.core import EdgeUpdate, UpdateKind, additions, removals
from repro.core.classification import UpdateCase
from repro.core.result import SourceUpdateStats, UpdateResult
from repro.core.updates import interleave_by_timestamp


class TestEdgeUpdate:
    def test_addition_constructor(self):
        update = EdgeUpdate.addition(1, 2, timestamp=5.0)
        assert update.is_addition and not update.is_removal
        assert update.kind is UpdateKind.ADDITION
        assert update.endpoints == (1, 2)
        assert update.timestamp == 5.0

    def test_removal_constructor(self):
        update = EdgeUpdate.removal("a", "b")
        assert update.is_removal
        assert update.timestamp is None

    def test_updates_are_hashable_and_frozen(self):
        update = EdgeUpdate.addition(1, 2)
        assert update in {update}
        with pytest.raises(AttributeError):
            update.u = 9

    def test_additions_and_removals_helpers(self):
        adds = additions([(1, 2), (3, 4)])
        rems = removals([(5, 6)])
        assert all(u.is_addition for u in adds)
        assert all(u.is_removal for u in rems)
        assert len(adds) == 2 and len(rems) == 1


class TestInterleave:
    def test_sorted_by_timestamp(self):
        stream_a = [EdgeUpdate.addition(1, 2, timestamp=3.0)]
        stream_b = [EdgeUpdate.removal(3, 4, timestamp=1.0)]
        merged = list(interleave_by_timestamp(stream_a, stream_b))
        assert merged[0].timestamp == 1.0
        assert merged[1].timestamp == 3.0

    def test_untimestamped_go_last(self):
        stream = [EdgeUpdate.addition(1, 2), EdgeUpdate.addition(3, 4, timestamp=0.5)]
        merged = list(interleave_by_timestamp(stream))
        assert merged[0].timestamp == 0.5
        assert merged[1].timestamp is None


class TestUpdateResult:
    def test_record_accumulates_counts(self):
        result = UpdateResult(update=EdgeUpdate.addition(0, 1))
        result.record(SourceUpdateStats(case=UpdateCase.SKIP))
        result.record(
            SourceUpdateStats(
                case=UpdateCase.ADD_STRUCTURAL,
                affected_vertices=3,
                touched_vertices=5,
            )
        )
        assert result.sources_processed == 2
        assert result.sources_skipped == 1
        assert result.affected_vertices == 3
        assert result.touched_vertices == 5
        assert result.skip_fraction == pytest.approx(0.5)

    def test_empty_result_skip_fraction(self):
        result = UpdateResult(update=EdgeUpdate.addition(0, 1))
        assert result.skip_fraction == 0.0
