"""Tests for the rank-correlation utilities and the proxy-centrality claim."""

import pytest

from repro.algorithms import (
    approximate_betweenness,
    brandes_betweenness,
    closeness_centrality,
    degree_centrality,
    vertex_betweenness,
)
from repro.analysis import (
    compare_rankings,
    kendall_tau,
    mean_absolute_error,
    spearman_correlation,
    top_k_overlap,
)
from repro.exceptions import ConfigurationError
from repro.generators import path_graph, star_graph, synthetic_social_graph


class TestSpearman:
    def test_identical_rankings(self):
        scores = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert spearman_correlation(scores, scores) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        a = {"a": 3.0, "b": 2.0, "c": 1.0}
        b = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert spearman_correlation(a, b) == pytest.approx(-1.0)

    def test_constant_ranking_gives_zero(self):
        a = {"a": 1.0, "b": 1.0, "c": 1.0}
        b = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert spearman_correlation(a, b) == 0.0

    def test_needs_two_common_keys(self):
        with pytest.raises(ConfigurationError):
            spearman_correlation({"a": 1.0}, {"a": 2.0})

    def test_only_common_keys_are_used(self):
        a = {"a": 1.0, "b": 2.0, "z": 99.0}
        b = {"a": 10.0, "b": 20.0, "y": -5.0}
        assert spearman_correlation(a, b) == pytest.approx(1.0)


class TestKendall:
    def test_identical_and_reversed(self):
        a = {i: float(i) for i in range(5)}
        b = {i: float(-i) for i in range(5)}
        assert kendall_tau(a, a) == pytest.approx(1.0)
        assert kendall_tau(a, b) == pytest.approx(-1.0)

    def test_partial_agreement_is_between(self):
        a = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        b = {"a": 1.0, "b": 2.0, "c": 4.0, "d": 3.0}
        tau = kendall_tau(a, b)
        assert 0.0 < tau < 1.0

    def test_ties_handled(self):
        a = {"a": 1.0, "b": 1.0, "c": 2.0}
        b = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert -1.0 <= kendall_tau(a, b) <= 1.0


class TestTopKAndMae:
    def test_top_k_overlap_full_and_empty(self):
        a = {"a": 3.0, "b": 2.0, "c": 1.0}
        b = {"a": 30.0, "b": 20.0, "c": 10.0}
        assert top_k_overlap(a, b, 2) == pytest.approx(1.0)
        c = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert top_k_overlap(a, c, 1) == pytest.approx(0.0)

    def test_top_k_invalid(self):
        with pytest.raises(ConfigurationError):
            top_k_overlap({"a": 1.0}, {"a": 1.0}, 0)

    def test_mean_absolute_error(self):
        assert mean_absolute_error({"a": 1.0, "b": 2.0}, {"a": 2.0}) == pytest.approx(1.5)
        assert mean_absolute_error({}, {}) == 0.0

    def test_compare_rankings_bundle(self):
        a = {"a": 3.0, "b": 2.0, "c": 1.0}
        comparison = compare_rankings(a, a, k=2)
        assert comparison.spearman == pytest.approx(1.0)
        assert comparison.as_row()[2] == pytest.approx(1.0)


class TestProxiesAgainstBetweenness:
    def test_approximation_with_all_sources_is_perfectly_correlated(self):
        graph = synthetic_social_graph(40, rng=3)
        exact = vertex_betweenness(graph)
        approx, _ = approximate_betweenness(graph, num_sources=graph.num_vertices, rng=1)
        assert spearman_correlation(exact, approx) == pytest.approx(1.0)

    def test_sampled_approximation_degrades_gracefully(self):
        graph = synthetic_social_graph(60, rng=5)
        exact = vertex_betweenness(graph)
        few, _ = approximate_betweenness(graph, num_sources=5, rng=2)
        many, _ = approximate_betweenness(graph, num_sources=40, rng=2)
        assert spearman_correlation(exact, many) >= spearman_correlation(exact, few) - 0.05

    def test_degree_is_an_imperfect_proxy(self):
        # On a path the degree ranking is nearly flat while betweenness peaks
        # in the middle: the correlation must be clearly below 1.
        graph = path_graph(9)
        exact = vertex_betweenness(graph)
        proxy = degree_centrality(graph)
        assert spearman_correlation(exact, proxy) < 0.9


class TestOtherCentralities:
    def test_degree_centrality_normalisation(self):
        graph = star_graph(4)
        scores = degree_centrality(graph)
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.25)
        raw = degree_centrality(graph, normalized=False)
        assert raw[0] == pytest.approx(4.0)

    def test_closeness_centrality_center_of_path(self):
        graph = path_graph(5)
        scores = closeness_centrality(graph)
        assert scores[2] == max(scores.values())
        assert scores[0] == min(scores.values())

    def test_closeness_of_isolated_vertex_is_zero(self):
        from repro.graph import Graph

        graph = Graph()
        graph.add_vertex("x")
        graph.add_edge("a", "b")
        scores = closeness_centrality(graph)
        assert scores["x"] == 0.0
        assert scores["a"] > 0.0
