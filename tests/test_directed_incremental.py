"""Directed evolving-graph support across the incremental stack.

These suites pin the directed scenario family the same way PR 3 pinned the
arrays backend: random directed add/remove streams (vertex births and
disconnecting removals included) are replayed through every pipeline and
the results are compared

* **bitwise** (``==`` on floats, never ``pytest.approx``) between the
  ``dicts`` and ``arrays`` backends running the same pipeline — the
  kernel's bit-identity promise extends to directed graphs; and
* against from-scratch directed Brandes (and a brute-force shortest-path
  enumerator) for absolute correctness, under the repo-wide tolerance the
  undirected suites use across *different* pipelines.

A directed store also carries its orientation in the disk header, so the
refusal paths (directed store + undirected graph and vice versa) are
covered here too.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import brandes_betweenness
from repro.algorithms.brute_force import brute_force_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.core.updates import batches
from repro.exceptions import ConfigurationError
from repro.generators import erdos_renyi_digraph
from repro.graph import Graph
from repro.parallel.executor import ProcessParallelBetweenness
from repro.parallel.mapreduce import MapReduceBetweenness
from repro.storage import ArrayBDStore, DiskBDStore

from tests.helpers import assert_framework_matches_recompute, assert_scores_equal

MAX_VERTICES = 6

settings.register_profile(
    "repro-directed",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-directed")


@st.composite
def digraph_and_updates(draw):
    """A random digraph plus a valid update script with births and removals.

    Generated against a shadow copy so every addition targets a missing
    arc, every removal an existing one; some additions attach brand-new
    vertices (stream births, in either orientation), and removals may
    disconnect whole regions from some sources — the structural cases of
    Algorithms 4 and 6-10 in their directed form.
    """
    n = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    mask = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    graph = Graph.from_edges(
        [e for e, keep in zip(possible, mask) if keep],
        directed=True,
        vertices=range(n),
    )

    shadow = graph.copy()
    next_vertex = n
    script = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        choice = draw(st.integers(min_value=0, max_value=3))
        edges = shadow.edge_list()
        if choice == 0 and edges:
            index = draw(st.integers(min_value=0, max_value=len(edges) - 1))
            u, v = edges[index]
            shadow.remove_edge(u, v)
            script.append(EdgeUpdate.removal(u, v))
        elif choice == 1:
            anchor_index = draw(
                st.integers(min_value=0, max_value=shadow.num_vertices - 1)
            )
            anchor = shadow.vertex_list()[anchor_index]
            if draw(st.booleans()):
                u, v = anchor, next_vertex
            else:
                u, v = next_vertex, anchor
            shadow.add_edge(u, v)
            script.append(EdgeUpdate.addition(u, v))
            next_vertex += 1
        else:
            candidates = [
                (u, v)
                for u in shadow.vertex_list()
                for v in shadow.vertex_list()
                if u != v and not shadow.has_edge(u, v)
            ]
            if not candidates:
                continue
            index = draw(st.integers(min_value=0, max_value=len(candidates) - 1))
            u, v = candidates[index]
            shadow.add_edge(u, v)
            script.append(EdgeUpdate.addition(u, v))
    return graph, script


def identical(a: IncrementalBetweenness, b: IncrementalBetweenness) -> None:
    """Bit-for-bit equality of both score mappings (no tolerance)."""
    assert a.vertex_betweenness() == b.vertex_betweenness()
    assert a.edge_betweenness() == b.edge_betweenness()


class TestDirectedStreams:
    """Random directed streams through the serial one-at-a-time pipeline."""

    @given(digraph_and_updates())
    def test_serial_backends_bit_identical_and_match_brandes(self, case):
        graph, script = case
        frameworks = {
            backend: IncrementalBetweenness(graph, backend=backend)
            for backend in ("dicts", "arrays")
        }
        for framework in frameworks.values():
            for update in script:
                framework.apply(update)
        identical(frameworks["dicts"], frameworks["arrays"])
        # Scores and the stored BD records both match a fresh directed run.
        assert_framework_matches_recompute(frameworks["dicts"])
        assert_framework_matches_recompute(frameworks["arrays"])

    @given(digraph_and_updates())
    def test_batched_backends_bit_identical_and_match_brandes(self, case):
        graph, script = case
        frameworks = {
            backend: IncrementalBetweenness(graph, backend=backend)
            for backend in ("dicts", "arrays")
        }
        for framework in frameworks.values():
            for chunk in batches(iter(script), 3):
                framework.apply_updates(chunk)
        identical(frameworks["dicts"], frameworks["arrays"])
        reference = brandes_betweenness(frameworks["dicts"].graph)
        for framework in frameworks.values():
            assert_scores_equal(
                framework.vertex_betweenness(), reference.vertex_scores
            )
            assert_scores_equal(framework.edge_betweenness(), reference.edge_scores)

    @given(digraph_and_updates())
    def test_disk_stores_bit_identical_to_ram(self, case):
        graph, script = case
        ram = IncrementalBetweenness(graph, backend="arrays")
        variants = [ram]
        for use_mmap in (True, False):
            store = DiskBDStore(
                graph.vertex_list(), use_mmap=use_mmap, directed=True
            )
            variants.append(
                IncrementalBetweenness(graph, store=store, backend="arrays")
            )
        try:
            for framework in variants:
                for chunk in batches(iter(script), 4):
                    framework.apply_updates(chunk)
            identical(variants[0], variants[1])
            identical(variants[0], variants[2])
        finally:
            for framework in variants:
                framework.store.close()


class TestDirectedBrandes:
    """Static directed Brandes: dicts vs arrays vs brute force."""

    @given(st.integers(min_value=0, max_value=200))
    def test_backends_bit_identical_on_random_digraphs(self, seed):
        graph = erdos_renyi_digraph(6, 0.35, rng=random.Random(seed))
        scalar = brandes_betweenness(graph)
        vector = brandes_betweenness(graph, backend="arrays")
        assert scalar.vertex_scores == vector.vertex_scores
        assert scalar.edge_scores == vector.edge_scores

    @pytest.mark.parametrize("seed", range(12))
    def test_brute_force_oracle_agrees(self, seed):
        graph = erdos_renyi_digraph(5, 0.4, rng=random.Random(seed))
        expected_vertex, expected_edge = brute_force_betweenness(graph)
        for backend in ("dicts", "arrays"):
            result = brandes_betweenness(graph, backend=backend)
            assert_scores_equal(result.vertex_scores, expected_vertex)
            assert_scores_equal(result.edge_scores, expected_edge)

    def test_oriented_edge_keys(self):
        graph = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        result = brandes_betweenness(graph)
        assert set(result.edge_scores) == {(0, 1), (1, 2)}
        # The path 0 -> 1 -> 2 exists; the reverse does not.
        assert result.vertex_scores[1] == 1.0


class TestDirectedParallel:
    """Worker payloads must rebuild directed partitions."""

    def test_executor_matches_brandes_both_backends(self):
        graph = erdos_renyi_digraph(8, 0.3, rng=random.Random(3))
        for backend in ("dicts", "arrays"):
            with ProcessParallelBetweenness(
                graph, num_workers=2, backend=backend
            ) as cluster:
                assert cluster.graph.directed
                cluster.apply_batch(
                    [EdgeUpdate.addition(0, 100), EdgeUpdate.addition(100, 4)]
                )
                cluster.apply_batch([EdgeUpdate.removal(0, 100)])
                vertex_scores, edge_scores = cluster.betweenness()
                reference = brandes_betweenness(cluster.graph)
            assert_scores_equal(vertex_scores, reference.vertex_scores)
            assert_scores_equal(edge_scores, reference.edge_scores)

    def test_mapreduce_matches_brandes(self):
        graph = erdos_renyi_digraph(7, 0.3, rng=random.Random(5))
        cluster = MapReduceBetweenness(graph, num_mappers=3, backend="arrays")
        cluster.add_edge(0, 50)
        cluster.add_edge(50, 3)
        reference = brandes_betweenness(cluster.mappers[0].graph)
        assert_scores_equal(cluster.vertex_betweenness(), reference.vertex_scores)
        assert_scores_equal(cluster.edge_betweenness(), reference.edge_scores)


class TestOrientationPersistence:
    """The disk header's directedness bit and the refusal paths."""

    def test_header_bit_survives_reopen(self, tmp_path):
        graph = erdos_renyi_digraph(5, 0.4, rng=random.Random(1))
        store = DiskBDStore(
            graph.vertex_list(), path=tmp_path / "bd.bin", directed=True
        )
        framework = IncrementalBetweenness(graph, store=store, backend="arrays")
        framework.store.close()
        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        assert reopened.directed is True
        reopened.close()

    def test_directed_store_refused_for_undirected_graph(self, tmp_path):
        digraph = erdos_renyi_digraph(5, 0.4, rng=random.Random(2))
        store = DiskBDStore(
            digraph.vertex_list(), path=tmp_path / "bd.bin", directed=True
        )
        framework = IncrementalBetweenness(digraph, store=store)
        framework.store.close()
        undirected = Graph.from_edges(
            digraph.edge_list(), vertices=digraph.vertex_list()
        )
        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        try:
            with pytest.raises(ConfigurationError):
                IncrementalBetweenness.from_store(undirected, reopened)
        finally:
            reopened.close()

    def test_undirected_store_refused_for_directed_graph(self, tmp_path):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        store = DiskBDStore(graph.vertex_list(), path=tmp_path / "bd.bin")
        framework = IncrementalBetweenness(graph, store=store)
        framework.store.close()
        digraph = Graph.from_edges(graph.edge_list(), directed=True)
        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        try:
            with pytest.raises(ConfigurationError):
                IncrementalBetweenness.from_store(digraph, reopened)
        finally:
            reopened.close()

    def test_array_store_orientation_checked(self):
        digraph = Graph.from_edges([(0, 1)], directed=True)
        store = ArrayBDStore(digraph.vertex_list(), directed=False)
        with pytest.raises(ConfigurationError):
            IncrementalBetweenness(digraph, store=store, backend="arrays")

    def test_checkpoint_resume_round_trip(self, tmp_path):
        graph = erdos_renyi_digraph(6, 0.35, rng=random.Random(9))
        store = DiskBDStore(
            graph.vertex_list(), path=tmp_path / "bd.bin", directed=True
        )
        framework = IncrementalBetweenness(graph, store=store, backend="arrays")
        framework.add_edge(0, 77)
        framework.remove_edge(0, 77)
        sidecar = framework.checkpoint(tmp_path / "ck.bin")
        expected_vertex = framework.vertex_betweenness()
        expected_edge = framework.edge_betweenness()
        framework.store.close()
        resumed = IncrementalBetweenness.resume(sidecar, backend="arrays")
        try:
            assert resumed.graph.directed is True
            assert resumed.vertex_betweenness() == expected_vertex
            assert resumed.edge_betweenness() == expected_edge
            # The resumed instance keeps evolving correctly.
            resumed.add_edge(1, 88)
            assert_framework_matches_recompute(resumed)
        finally:
            resumed.store.close()
