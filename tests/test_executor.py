"""Process-parallel executor: merged scores must equal the serial framework."""

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.exceptions import ConfigurationError, UpdateError
from repro.parallel import ProcessParallelBetweenness

from tests.helpers import assert_scores_equal, random_connected_graph
from tests.test_batched_updates import random_update_sequence

TOLERANCE = 1e-9


def serial_reference(graph, updates):
    framework = IncrementalBetweenness(graph)
    for update in updates:
        framework.apply(update)
    return framework


class TestExecutorEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_across_worker_counts(self, workers):
        graph = random_connected_graph(14, 0.15, seed=31)
        updates = random_update_sequence(graph, 8, seed=32)
        serial = serial_reference(graph, updates)
        with ProcessParallelBetweenness(graph, num_workers=workers) as cluster:
            cluster.process_stream(updates, batch_size=1)
            vertex_scores, edge_scores = cluster.betweenness()
        assert_scores_equal(
            vertex_scores, serial.vertex_betweenness(), TOLERANCE, "vertex"
        )
        assert_scores_equal(edge_scores, serial.edge_betweenness(), TOLERANCE, "edge")

    @pytest.mark.parametrize("batch_size", [2, 8])
    def test_batched_stream_matches_serial(self, batch_size):
        graph = random_connected_graph(13, 0.15, seed=41)
        updates = random_update_sequence(graph, 8, seed=42)
        serial = serial_reference(graph, updates)
        with ProcessParallelBetweenness(graph, num_workers=2) as cluster:
            cluster.process_stream(updates, batch_size=batch_size)
            vertex_scores, edge_scores = cluster.betweenness()
        assert_scores_equal(vertex_scores, serial.vertex_betweenness(), TOLERANCE)
        assert_scores_equal(edge_scores, serial.edge_betweenness(), TOLERANCE)

    def test_disk_store_workers(self):
        graph = random_connected_graph(10, 0.2, seed=51)
        updates = random_update_sequence(graph, 5, seed=52)
        serial = serial_reference(graph, updates)
        with ProcessParallelBetweenness(
            graph, num_workers=2, store="disk"
        ) as cluster:
            cluster.process_stream(updates, batch_size=2)
            vertex_scores, _ = cluster.betweenness()
        assert_scores_equal(vertex_scores, serial.vertex_betweenness(), TOLERANCE)

    def test_snapshot_seeded_workers(self):
        graph = random_connected_graph(12, 0.15, seed=61)
        base = IncrementalBetweenness(graph)
        updates = random_update_sequence(graph, 6, seed=62)
        serial = serial_reference(graph, updates)
        with ProcessParallelBetweenness(
            graph, num_workers=2, source_data=base.store.snapshot()
        ) as cluster:
            cluster.process_stream(updates, batch_size=3)
            vertex_scores, edge_scores = cluster.betweenness()
        assert_scores_equal(vertex_scores, serial.vertex_betweenness(), TOLERANCE)
        assert_scores_equal(edge_scores, serial.edge_betweenness(), TOLERANCE)

    def test_new_vertices_assigned_to_exactly_one_worker(self, cycle6):
        with ProcessParallelBetweenness(cycle6, num_workers=3) as cluster:
            cluster.apply_batch(
                [EdgeUpdate.addition(0, 99), EdgeUpdate.addition(99, 3)]
            )
            vertex_scores, _ = cluster.betweenness()
        reference = brandes_betweenness(cluster.graph)
        assert_scores_equal(vertex_scores, reference.vertex_scores, TOLERANCE)


class TestExecutorBehaviour:
    def test_reports_worker_timings(self, cycle6):
        with ProcessParallelBetweenness(cycle6, num_workers=2) as cluster:
            report = cluster.add_edge(0, 3)
        assert len(report.worker_seconds) == 2
        assert len(report.worker_cpu_seconds) == 2
        assert report.wall_clock_seconds <= report.cumulative_seconds + 1e-9
        assert report.elapsed_seconds > 0.0
        assert report.num_updates == 1

    def test_partitions_cover_all_sources(self):
        graph = random_connected_graph(11, 0.2, seed=71)
        with ProcessParallelBetweenness(graph, num_workers=3) as cluster:
            covered = sorted(v for p in cluster.partitions for v in p)
        assert covered == sorted(graph.vertices())

    def test_init_seconds_reported(self, cycle6):
        with ProcessParallelBetweenness(cycle6, num_workers=2) as cluster:
            assert len(cluster.init_seconds) == 2
            assert cluster.init_wall_clock_seconds >= max(cluster.init_seconds) - 1e-9

    def test_invalid_worker_count(self, cycle6):
        with pytest.raises(ConfigurationError):
            ProcessParallelBetweenness(cycle6, num_workers=0)

    def test_invalid_store_kind(self, cycle6):
        with pytest.raises(ConfigurationError):
            ProcessParallelBetweenness(cycle6, num_workers=1, store="papyrus")

    def test_invalid_update_raises_and_cluster_survives(self, cycle6):
        with ProcessParallelBetweenness(cycle6, num_workers=2) as cluster:
            with pytest.raises(UpdateError):
                cluster.add_edge(0, 1)  # already present
            # The driver rejected the update before sending; still usable.
            cluster.add_edge(0, 3)
            vertex_scores, _ = cluster.betweenness()
        reference = brandes_betweenness(cluster.graph)
        assert_scores_equal(vertex_scores, reference.vertex_scores, TOLERANCE)

    def test_empty_batch(self, cycle6):
        with ProcessParallelBetweenness(cycle6, num_workers=2) as cluster:
            report = cluster.apply_batch([])
        assert report.num_updates == 0

    def test_close_is_idempotent_and_blocks_use(self, cycle6):
        cluster = ProcessParallelBetweenness(cycle6, num_workers=2)
        cluster.close()
        cluster.close()
        with pytest.raises(ConfigurationError):
            cluster.add_edge(0, 3)


class TestExecutorFaultDetection:
    """The driver must never hang on a dead worker (the pre-shard failure
    mode was a blocking ``Pipe.recv`` that waited forever).  The legacy
    executor has no per-partition durability, so a death is terminal — but
    it must surface as :exc:`WorkerFailedError` within moments, with the
    cluster torn down."""

    def test_sigkilled_worker_raises_instead_of_hanging(self):
        import os
        import signal

        from repro.exceptions import WorkerFailedError

        graph = random_connected_graph(12, 0.2, seed=81)
        cluster = ProcessParallelBetweenness(graph, num_workers=2)
        try:
            cluster.add_edge(*_absent_edge(graph))
            os.kill(cluster._processes[1].pid, signal.SIGKILL)
            cluster._processes[1].join(timeout=10.0)
            with pytest.raises(WorkerFailedError, match="worker 1"):
                cluster.betweenness()
        finally:
            cluster.close()
        # The failure closed the cluster; further use is refused, not hung.
        with pytest.raises(ConfigurationError):
            cluster.add_edge(0, 1)

    def test_recv_timeout_bounds_the_wait(self, cycle6):
        """A generous timeout never fires for a healthy worker."""
        with ProcessParallelBetweenness(
            cycle6, num_workers=2, recv_timeout=30.0
        ) as cluster:
            report = cluster.add_edge(0, 3)
        assert report.num_updates == 1


def _absent_edge(graph):
    vertices = sorted(graph.vertices())
    for i, u in enumerate(vertices):
        for v in vertices[i + 1 :]:
            if not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")
