"""Tests of the public framework API surface beyond single updates."""

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.graph import Graph
from repro.storage import DiskBDStore, InMemoryBDStore
from repro.storage.partition import partition_sources

from tests.helpers import random_connected_graph
from tests.helpers import assert_framework_matches_recompute, assert_scores_equal


class TestConstruction:
    def test_directed_graph_accepted(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        ibc = IncrementalBetweenness(g)
        reference = brandes_betweenness(g)
        assert ibc.vertex_betweenness() == reference.vertex_scores
        assert ibc.edge_betweenness() == reference.edge_scores

    def test_initial_scores_match_brandes(self, two_triangles_bridge):
        ibc = IncrementalBetweenness(two_triangles_bridge)
        reference = brandes_betweenness(two_triangles_bridge)
        assert_scores_equal(ibc.vertex_betweenness(), reference.vertex_scores)
        assert_scores_equal(ibc.edge_betweenness(), reference.edge_scores)

    def test_framework_does_not_mutate_input_graph(self, path5):
        ibc = IncrementalBetweenness(path5)
        ibc.add_edge(0, 4)
        assert not path5.has_edge(0, 4)

    def test_num_sources(self, path5):
        assert IncrementalBetweenness(path5).num_sources == 5

    def test_empty_graph(self):
        ibc = IncrementalBetweenness(Graph())
        assert ibc.vertex_betweenness() == {}
        ibc.add_edge(0, 1)
        assert ibc.vertex_score(0) == pytest.approx(0.0)


class TestQueries:
    def test_vertex_and_edge_score_accessors(self, path5):
        ibc = IncrementalBetweenness(path5)
        assert ibc.vertex_score(2) == pytest.approx(8.0)
        assert ibc.edge_score(1, 2) == pytest.approx(12.0)
        assert ibc.edge_score(2, 1) == pytest.approx(12.0)

    def test_score_copies_are_snapshots(self, path5):
        ibc = IncrementalBetweenness(path5)
        snapshot = ibc.vertex_betweenness()
        ibc.add_edge(0, 4)
        assert snapshot[2] == pytest.approx(8.0)
        assert ibc.vertex_score(2) != pytest.approx(8.0)


class TestStreamProcessing:
    def test_process_stream_returns_one_result_per_update(self, path5):
        ibc = IncrementalBetweenness(path5)
        stream = [EdgeUpdate.addition(0, 2), EdgeUpdate.removal(2, 3)]
        results = ibc.process_stream(stream)
        assert len(results) == 2
        assert all(r.elapsed_seconds is not None and r.elapsed_seconds >= 0 for r in results)
        assert_framework_matches_recompute(ibc)


class TestPartialSources:
    def test_partial_frameworks_sum_to_exact_scores(self):
        graph = random_connected_graph(14, 0.15, seed=21)
        vertices = graph.vertex_list()
        partitions = partition_sources(vertices, 3)
        mappers = [
            IncrementalBetweenness(graph, sources=list(p.sources)) for p in partitions
        ]
        updates = [EdgeUpdate.addition(0, 13), EdgeUpdate.removal(*graph.edge_list()[0])]
        for update in updates:
            for mapper in mappers:
                mapper.apply(update)
        combined_vertex = {}
        combined_edge = {}
        for mapper in mappers:
            for key, value in mapper.vertex_betweenness().items():
                combined_vertex[key] = combined_vertex.get(key, 0.0) + value
            for key, value in mapper.edge_betweenness().items():
                combined_edge[key] = combined_edge.get(key, 0.0) + value
        final = mappers[0].graph
        reference = brandes_betweenness(final)
        assert_scores_equal(combined_vertex, reference.vertex_scores)
        assert_scores_equal(combined_edge, reference.edge_scores)

    def test_restricted_instance_does_not_adopt_new_vertices(self, path5):
        ibc = IncrementalBetweenness(path5, sources=[0, 1])
        ibc.add_edge(4, 77)
        assert 77 not in list(ibc.store.sources())
        ibc.add_source(77)
        assert 77 in list(ibc.store.sources())


class TestStoreBackends:
    def test_disk_store_framework_matches_memory(self, two_triangles_bridge):
        memory = IncrementalBetweenness(two_triangles_bridge, store=InMemoryBDStore())
        disk = IncrementalBetweenness(
            two_triangles_bridge, store=DiskBDStore(two_triangles_bridge.vertex_list())
        )
        for framework in (memory, disk):
            framework.add_edge(0, 4)
            framework.remove_edge(2, 3)
        assert_scores_equal(memory.vertex_betweenness(), disk.vertex_betweenness())
        assert_scores_equal(memory.edge_betweenness(), disk.edge_betweenness())
        disk.store.close()

    def test_maintain_predecessors_variant_is_consistent(self, cycle6):
        plain = IncrementalBetweenness(cycle6)
        with_preds = IncrementalBetweenness(cycle6, maintain_predecessors=True)
        for framework in (plain, with_preds):
            framework.add_edge(0, 3)
            framework.remove_edge(1, 2)
        assert_scores_equal(plain.vertex_betweenness(), with_preds.vertex_betweenness())
        assert_scores_equal(plain.edge_betweenness(), with_preds.edge_betweenness())
        assert_framework_matches_recompute(with_preds)

    def test_predecessor_lists_match_distances(self, path5):
        ibc = IncrementalBetweenness(path5, maintain_predecessors=True)
        ibc.add_edge(0, 3)
        ibc.remove_edge(1, 2)
        for source in ibc.store.sources():
            data = ibc.store.get(source)
            lists = ibc._predecessors[source]
            for vertex, level in data.distance.items():
                expected = {
                    nbr
                    for nbr in ibc.graph.in_neighbors(vertex)
                    if data.distance.get(nbr) == level - 1
                }
                assert lists.get(vertex, set()) == expected
