"""Tests for graph generators, dataset stand-ins and update streams."""

import pytest

from repro.core import UpdateKind
from repro.exceptions import ConfigurationError
from repro.generators import (
    DATASET_SPECS,
    EvolvingGraph,
    addition_stream,
    available_datasets,
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    load_dataset,
    path_graph,
    powerlaw_cluster_graph,
    removal_stream,
    replay_last_edges,
    star_graph,
    synthetic_social_graph,
    synthetic_suite,
    timestamped_addition_stream,
    watts_strogatz_graph,
)
from repro.graph import average_degree, clustering_coefficient, is_connected


class TestDeterministicGenerators:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_vertices == 6 and g.num_edges == 15

    def test_path_cycle_star_grid(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        assert star_graph(7).num_edges == 7
        grid = grid_graph(3, 4)
        assert grid.num_vertices == 12 and grid.num_edges == 17

    def test_cycle_too_small(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)


class TestRandomGenerators:
    def test_erdos_renyi_seeded_reproducible(self):
        a = erdos_renyi_graph(30, 0.2, rng=5)
        b = erdos_renyi_graph(30, 0.2, rng=5)
        assert set(a.edges()) == set(b.edges())

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_graph(10, 1.5)

    def test_barabasi_albert_connected_with_expected_edges(self):
        g = barabasi_albert_graph(50, 3, rng=1)
        assert g.num_vertices == 50
        assert is_connected(g)
        # m initial star edges + 3 per new vertex.
        assert g.num_edges == 3 + 3 * (50 - 4)

    def test_barabasi_albert_invalid_params(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(3, 5)

    def test_watts_strogatz_degree_preserved_without_rewiring(self):
        g = watts_strogatz_graph(20, 4, 0.0, rng=2)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_watts_strogatz_invalid_k(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_powerlaw_cluster_raises_clustering(self):
        plain = powerlaw_cluster_graph(120, 4, 0.0, rng=3)
        clustered = powerlaw_cluster_graph(120, 4, 0.9, rng=3)
        assert clustering_coefficient(clustered) > clustering_coefficient(plain)

    def test_social_graph_matches_target_statistics(self):
        g = synthetic_social_graph(300, rng=7)
        assert is_connected(g)
        assert average_degree(g) == pytest.approx(11.8, abs=2.5)
        assert clustering_coefficient(g) > 0.1

    def test_social_graph_too_small(self):
        with pytest.raises(ConfigurationError):
            synthetic_social_graph(2)


class TestDatasets:
    def test_all_specs_have_names(self):
        assert set(available_datasets()) == set(DATASET_SPECS)
        assert "facebook" in available_datasets(kind="real")
        assert "synthetic-1k" in available_datasets(kind="synthetic")

    def test_load_dataset_scaled(self):
        g = load_dataset("wikielections", num_vertices=120, rng=1)
        assert 40 <= g.num_vertices <= 120
        assert is_connected(g)

    def test_low_clustering_dataset(self):
        amazon = load_dataset("amazon", num_vertices=200, rng=2)
        dblp = load_dataset("dblp", num_vertices=200, rng=2)
        assert clustering_coefficient(amazon) < clustering_coefficient(dblp)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            load_dataset("not-a-dataset")

    def test_as_evolving(self):
        evolving = load_dataset("wikielections", num_vertices=80, rng=3, as_evolving=True)
        assert isinstance(evolving, EvolvingGraph)
        assert evolving.num_edges > 0

    def test_synthetic_suite_sizes(self):
        suite = synthetic_suite(sizes={"synthetic-1k": 60, "synthetic-10k": 80,
                                       "synthetic-100k": 90, "synthetic-1000k": 100}, rng=1)
        assert set(suite) == set(available_datasets(kind="synthetic"))
        assert suite["synthetic-1k"].num_vertices <= 60


class TestUpdateStreams:
    def test_addition_stream_targets_non_edges(self, two_triangles_bridge):
        updates = addition_stream(two_triangles_bridge, 5, rng=1)
        assert len(updates) == 5
        assert all(u.kind is UpdateKind.ADDITION for u in updates)
        assert all(not two_triangles_bridge.has_edge(u.u, u.v) for u in updates)
        pairs = {frozenset((u.u, u.v)) for u in updates}
        assert len(pairs) == 5  # no duplicates

    def test_addition_stream_too_many_for_dense_graph(self):
        with pytest.raises(ConfigurationError):
            addition_stream(complete_graph(4), 2, rng=1)

    def test_removal_stream_targets_existing_edges(self, two_triangles_bridge):
        updates = removal_stream(two_triangles_bridge, 3, rng=2)
        assert len(updates) == 3
        assert all(two_triangles_bridge.has_edge(u.u, u.v) for u in updates)

    def test_removal_stream_more_than_edges(self, path5):
        with pytest.raises(ConfigurationError):
            removal_stream(path5, 10)

    def test_timestamped_stream_sorted(self):
        updates = timestamped_addition_stream([(1, 2, 9.0), (3, 4, 2.0)])
        assert [u.timestamp for u in updates] == [2.0, 9.0]

    def test_replay_last_edges_as_removals(self):
        history = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]
        removals = replay_last_edges(history, 2, as_removals=True)
        assert [u.endpoints for u in removals] == [(2, 3), (1, 2)]
        assert all(u.is_removal for u in removals)


class TestEvolvingGraph:
    def test_from_graph_preserves_edges(self, two_triangles_bridge):
        evolving = EvolvingGraph.from_graph(two_triangles_bridge, rng=1)
        assert evolving.num_edges == two_triangles_bridge.num_edges
        rebuilt = evolving.base_graph()
        assert set(rebuilt.edges()) == set(two_triangles_bridge.edges())

    def test_prefix_and_future_partition_history(self, cycle6):
        evolving = EvolvingGraph.from_graph(cycle6, rng=2)
        prefix = 3
        base = evolving.base_graph(prefix)
        future = evolving.future_updates(prefix)
        assert base.num_edges == 3
        assert len(future) == evolving.num_edges - 3
        assert all(u.timestamp is not None for u in future)

    def test_timestamps_increase(self, cycle6):
        evolving = EvolvingGraph.from_graph(cycle6, rng=3)
        times = [t for _, _, t in evolving.history]
        assert times == sorted(times)
        assert all(dt >= 0 for dt in evolving.interarrival_times())

    def test_invalid_prefix(self, cycle6):
        evolving = EvolvingGraph.from_graph(cycle6, rng=4)
        with pytest.raises(ConfigurationError):
            evolving.base_graph(99)
        with pytest.raises(ConfigurationError):
            evolving.future_updates(-1)
