"""Unit tests for the dynamic graph substrate."""

import pytest

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph import Graph


class TestVertexOperations:
    def test_add_vertex_returns_true_when_new(self):
        g = Graph()
        assert g.add_vertex("a") is True
        assert g.add_vertex("a") is False
        assert g.num_vertices == 1

    def test_contains_and_has_vertex(self):
        g = Graph()
        g.add_vertex(1)
        assert 1 in g
        assert g.has_vertex(1)
        assert 2 not in g

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert not g.has_vertex(1)
        assert g.num_edges == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(42)

    def test_len_counts_vertices(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert len(g) == 4


class TestEdgeOperations:
    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("x", "y")
        assert g.has_vertex("x") and g.has_vertex("y")
        assert g.has_edge("x", "y")
        assert g.has_edge("y", "x")  # undirected

    def test_add_duplicate_edge_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        with pytest.raises(EdgeExistsError):
            g.add_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(SelfLoopError):
            g.add_edge(3, 3)

    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.has_vertex(0)  # endpoint kept
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = Graph.from_edges([(0, 1)])
        g.add_vertex(2)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_edge_missing_vertex_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(VertexNotFoundError):
            g.remove_edge(0, 99)

    def test_edges_yield_each_undirected_edge_once(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]
        assert g.num_edges == 3

    def test_degree(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1


class TestDirectedGraph:
    def test_directed_edges_are_one_way(self):
        g = Graph(directed=True)
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_out_and_in_neighbors_differ(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 2)
        assert set(g.out_neighbors(1)) == {2}
        assert set(g.in_neighbors(2)) == {1, 3}
        assert set(g.out_neighbors(2)) == set()

    def test_directed_num_edges(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 2

    def test_remove_vertex_directed(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 1)
        g.remove_vertex(1)
        assert g.num_edges == 0
        assert set(g.vertices()) == {2, 3}

    def test_undirected_in_neighbors_equal_out(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert g.in_neighbors(2) == g.out_neighbors(2) == {1, 3}


class TestConstructorsAndCopies:
    def test_from_edges_ignores_duplicates_and_self_loops(self):
        g = Graph.from_edges([(0, 1), (1, 0), (2, 2), (1, 2)])
        assert g.num_edges == 2
        assert not g.has_vertex(2) or g.has_edge(1, 2)

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2, 3])
        assert g.num_vertices == 4
        assert g.degree(3) == 0

    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        clone = g.copy()
        clone.add_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert clone.has_edge(0, 2)

    def test_subgraph_induced(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = g.subgraph([0, 1, 2])
        assert set(sub.vertices()) == {0, 1, 2}
        assert sub.num_edges == 2

    def test_subgraph_unknown_vertex_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(VertexNotFoundError):
            g.subgraph([0, 7])

    def test_vertex_and_edge_lists(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert set(g.vertex_list()) == {0, 1, 2}
        assert len(g.edge_list()) == 2

    def test_neighbors_of_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.neighbors(0)
