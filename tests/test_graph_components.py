"""Tests for connected components and LCC extraction."""

from repro.graph import Graph, connected_components, is_connected, largest_connected_component


class TestConnectedComponents:
    def test_single_component(self, cycle6):
        components = connected_components(cycle6)
        assert len(components) == 1
        assert components[0] == set(range(6))

    def test_multiple_components(self, disconnected_graph):
        components = connected_components(disconnected_graph)
        assert len(components) == 2
        sizes = sorted(len(c) for c in components)
        assert sizes == [3, 3]

    def test_isolated_vertices_are_components(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("b")
        g.add_edge("c", "d")
        assert len(connected_components(g)) == 3

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_directed_uses_weak_connectivity(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        assert len(connected_components(g)) == 1


class TestIsConnected:
    def test_connected(self, path5):
        assert is_connected(path5)

    def test_disconnected(self, disconnected_graph):
        assert not is_connected(disconnected_graph)

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())


class TestLargestConnectedComponent:
    def test_keeps_largest(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (10, 11)])
        lcc = largest_connected_component(g)
        assert set(lcc.vertices()) == {0, 1, 2, 3}
        assert lcc.num_edges == 3

    def test_already_connected_graph_is_unchanged(self, cycle6):
        lcc = largest_connected_component(cycle6)
        assert set(lcc.vertices()) == set(cycle6.vertices())
        assert set(lcc.edges()) == set(cycle6.edges())

    def test_empty_graph(self):
        lcc = largest_connected_component(Graph())
        assert lcc.num_vertices == 0
