"""Tests for edge-list I/O."""

from repro.graph import Graph, read_edge_list, write_edge_list
from repro.graph.io import iter_edge_records, read_timestamped_edges, write_timestamped_edges


class TestEdgeListRoundTrip:
    def test_write_then_read(self, tmp_path, two_triangles_bridge):
        path = tmp_path / "graph.txt"
        write_edge_list(two_triangles_bridge, path, header="two triangles")
        loaded = read_edge_list(path)
        assert set(loaded.edges()) == set(two_triangles_bridge.edges())

    def test_header_lines_are_comments(self, tmp_path, path5):
        path = tmp_path / "graph.txt"
        write_edge_list(path5, path, header="line one\nline two")
        content = path.read_text()
        assert content.startswith("# line one\n# line two\n")

    def test_read_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n1 2\n2 3 123.5\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.has_edge(2, 3)

    def test_read_directed(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n")
        graph = read_edge_list(path, directed=True)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_duplicate_and_self_loop_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 1\n3 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_string_vertices_preserved(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\n")
        graph = read_edge_list(path)
        assert graph.has_edge("alice", "bob")


class TestTimestampedRecords:
    def test_iter_edge_records_with_timestamps(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1 2 10.0\n2 3 5.0\n")
        records = list(iter_edge_records(path))
        assert records == [(1, 2, 10.0), (2, 3, 5.0)]

    def test_read_timestamped_edges_sorted(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1 2 10.0\n2 3 5.0\n")
        records = read_timestamped_edges(path)
        assert [r[2] for r in records] == [5.0, 10.0]

    def test_mixed_timestamps_not_sorted(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("1 2 10.0\n2 3\n")
        records = read_timestamped_edges(path)
        assert records[0] == (1, 2, 10.0)
        assert records[1] == (2, 3, None)

    def test_write_timestamped_round_trip(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_timestamped_edges([(1, 2, 1.5), (3, 4, None)], path, header="h")
        records = list(iter_edge_records(path))
        assert records == [(1, 2, 1.5), (3, 4, None)]
