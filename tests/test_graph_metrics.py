"""Tests for the Table 2 structural metrics."""

import pytest

from repro.exceptions import DirectedGraphUnsupportedError
from repro.graph import Graph, average_degree, clustering_coefficient, degree_histogram, effective_diameter, profile
from repro.graph.metrics import local_clustering
from repro.generators import complete_graph, cycle_graph, path_graph, star_graph


class TestAverageDegree:
    def test_cycle_has_degree_two(self):
        assert average_degree(cycle_graph(7)) == pytest.approx(2.0)

    def test_complete_graph(self):
        assert average_degree(complete_graph(5)) == pytest.approx(4.0)

    def test_empty_graph(self):
        assert average_degree(Graph()) == 0.0

    def test_directed_counts_each_arc_once(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert average_degree(g) == pytest.approx(1.0)


class TestClusteringCoefficient:
    def test_triangle_is_fully_clustered(self):
        assert clustering_coefficient(complete_graph(3)) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        assert clustering_coefficient(star_graph(6)) == pytest.approx(0.0)

    def test_local_clustering_mixed(self):
        # Vertex 0 has neighbors {1, 2, 3}, only (1, 2) connected: C = 1/3.
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert local_clustering(g, 0) == pytest.approx(1.0 / 3.0)

    def test_degree_one_vertex_has_zero_local_clustering(self, path5):
        assert local_clustering(path5, 0) == 0.0

    def test_directed_unsupported(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        with pytest.raises(DirectedGraphUnsupportedError):
            clustering_coefficient(g)

    def test_sampled_estimate_close_on_complete_graph(self):
        g = complete_graph(12)
        estimate = clustering_coefficient(g, sample_size=5, rng=0)
        assert estimate == pytest.approx(1.0)


class TestEffectiveDiameter:
    def test_path_graph_effective_diameter_below_true_diameter(self):
        g = path_graph(11)
        ed = effective_diameter(g, quantile=0.9)
        assert 7.0 <= ed <= 10.0

    def test_complete_graph(self):
        assert effective_diameter(complete_graph(6)) <= 1.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            effective_diameter(path_graph(4), quantile=1.5)

    def test_tiny_graph(self):
        g = Graph()
        g.add_vertex(0)
        assert effective_diameter(g) == 0.0

    def test_monotone_in_quantile(self):
        g = path_graph(15)
        assert effective_diameter(g, 0.5) <= effective_diameter(g, 0.95)


class TestDegreeHistogramAndProfile:
    def test_degree_histogram_star(self):
        histogram = degree_histogram(star_graph(4))
        assert histogram == {4: 1, 1: 4}

    def test_profile_row_shape(self, two_triangles_bridge):
        row = profile(two_triangles_bridge, name="bridge").as_row()
        assert row[0] == "bridge"
        assert row[1] == 6 and row[2] == 7
        assert isinstance(row[3], float)
