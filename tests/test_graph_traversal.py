"""Tests for BFS traversals and shortest-path DAG construction."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph import Graph, bfs_distances, bfs_tree, shortest_path_dag
from repro.graph.traversal import eccentricity, single_source_shortest_paths


class TestBfsDistances:
    def test_path_graph_distances(self, path5):
        assert bfs_distances(path5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_vertices_absent(self, disconnected_graph):
        distances = bfs_distances(disconnected_graph, 0)
        assert 10 not in distances
        assert distances[2] == 1

    def test_missing_source_raises(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances(Graph(), 0)

    def test_directed_follows_out_links(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2}

    def test_bfs_tree_parents(self, path5):
        parents = bfs_tree(path5, 0)
        assert parents[0] is None
        assert parents[3] == 2


class TestShortestPathDag:
    def test_sigma_counts_on_cycle(self, cycle6):
        dag = shortest_path_dag(cycle6, 0)
        # The antipodal vertex (3) is reachable by two distinct shortest paths.
        assert dag.sigma[3] == 2
        assert dag.sigma[1] == 1
        assert dag.distance[3] == 3

    def test_predecessors_only_when_requested(self, cycle6):
        without = shortest_path_dag(cycle6, 0)
        with_preds = shortest_path_dag(cycle6, 0, keep_predecessors=True)
        assert without.predecessors is None
        assert with_preds.predecessors[3] == {2, 4}

    def test_order_is_non_decreasing_distance(self, two_triangles_bridge):
        dag = shortest_path_dag(two_triangles_bridge, 0)
        distances = [dag.distance[v] for v in dag.order]
        assert distances == sorted(distances)

    def test_source_values(self, path5):
        dag = shortest_path_dag(path5, 2)
        assert dag.distance[2] == 0
        assert dag.sigma[2] == 1

    def test_is_reachable(self, disconnected_graph):
        dag = shortest_path_dag(disconnected_graph, 0)
        assert dag.is_reachable(1)
        assert not dag.is_reachable(10)

    def test_sigma_multiplies_along_diamonds(self):
        # Two stacked diamonds: 4 shortest paths from 0 to 6.
        g = Graph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)]
        )
        dag = shortest_path_dag(g, 0)
        assert dag.sigma[6] == 4


class TestPathEnumeration:
    def test_all_shortest_paths_on_cycle(self, cycle6):
        paths = single_source_shortest_paths(cycle6, 0, 3)
        assert sorted(paths) == [[0, 1, 2, 3], [0, 5, 4, 3]]

    def test_no_path_between_components(self, disconnected_graph):
        assert single_source_shortest_paths(disconnected_graph, 0, 10) == []

    def test_path_to_self(self, path5):
        assert single_source_shortest_paths(path5, 2, 2) == [[2]]

    def test_eccentricity(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2
