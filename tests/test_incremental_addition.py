"""Framework-level tests for edge additions, covering every paper case."""

import pytest

from repro.core import IncrementalBetweenness, UpdateCase
from repro.exceptions import UpdateError
from repro.graph import Graph

from tests.helpers import random_connected_graph, random_graph
from tests.helpers import assert_framework_matches_recompute


class TestAdditionCases:
    def test_same_level_addition_is_skipped_for_affected_sources(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        ibc = IncrementalBetweenness(g)
        result = ibc.add_edge(1, 2)
        # From source 0 the two endpoints are at the same level -> skip.
        assert result.case_counts.get(UpdateCase.SKIP, 0) >= 1
        assert_framework_matches_recompute(ibc)

    def test_one_level_addition(self):
        # From source 0, the new edge (2, 3) spans adjacent levels (dd == 1).
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3)])
        ibc = IncrementalBetweenness(g)
        result = ibc.add_edge(2, 3)
        assert UpdateCase.ADD_NO_STRUCTURE in result.case_counts
        assert_framework_matches_recompute(ibc)

    def test_multi_level_addition(self, path5):
        ibc = IncrementalBetweenness(path5)
        result = ibc.add_edge(0, 4)
        assert UpdateCase.ADD_STRUCTURAL in result.case_counts
        assert_framework_matches_recompute(ibc)

    def test_shortcut_in_cycle(self, cycle6):
        ibc = IncrementalBetweenness(cycle6)
        ibc.add_edge(0, 3)
        assert_framework_matches_recompute(ibc)

    def test_addition_between_components(self, disconnected_graph):
        ibc = IncrementalBetweenness(disconnected_graph)
        ibc.add_edge(2, 10)
        assert_framework_matches_recompute(ibc)

    def test_addition_of_new_vertex(self, path5):
        ibc = IncrementalBetweenness(path5)
        result = ibc.add_edge(4, 99)
        assert 99 in ibc.vertex_betweenness()
        assert ibc.graph.has_vertex(99)
        assert result.sources_processed == 6  # the new vertex is a source too
        assert_framework_matches_recompute(ibc)

    def test_addition_of_edge_between_two_new_vertices(self, path5):
        ibc = IncrementalBetweenness(path5)
        ibc.add_edge(100, 101)
        assert_framework_matches_recompute(ibc)
        # A later edge connecting the new component to the old one.
        ibc.add_edge(101, 0)
        assert_framework_matches_recompute(ibc)

    def test_densification_of_star(self, star_graph5):
        ibc = IncrementalBetweenness(star_graph5)
        ibc.add_edge(1, 2)
        ibc.add_edge(3, 4)
        ibc.add_edge(1, 5)
        assert_framework_matches_recompute(ibc)

    def test_bridge_then_shortcut(self, two_triangles_bridge):
        ibc = IncrementalBetweenness(two_triangles_bridge)
        ibc.add_edge(0, 5)
        assert_framework_matches_recompute(ibc)
        ibc.add_edge(1, 4)
        assert_framework_matches_recompute(ibc)


class TestAdditionErrors:
    def test_duplicate_edge_rejected(self, path5):
        ibc = IncrementalBetweenness(path5)
        with pytest.raises(UpdateError):
            ibc.add_edge(0, 1)

    def test_self_loop_rejected(self, path5):
        ibc = IncrementalBetweenness(path5)
        with pytest.raises(UpdateError):
            ibc.add_edge(2, 2)

    def test_failed_update_leaves_graph_unchanged(self, path5):
        ibc = IncrementalBetweenness(path5)
        with pytest.raises(UpdateError):
            ibc.add_edge(0, 1)
        assert ibc.graph.num_edges == 4
        assert_framework_matches_recompute(ibc)


class TestAdditionSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_growing_random_graph(self, seed):
        graph = random_graph(12, 0.12, seed)
        ibc = IncrementalBetweenness(graph)
        candidates = [
            (u, v)
            for u in range(12)
            for v in range(u + 1, 12)
            if not graph.has_edge(u, v)
        ]
        for u, v in candidates[: 8]:
            ibc.add_edge(u, v)
        assert_framework_matches_recompute(ibc)

    def test_updates_report_skip_fraction(self):
        graph = random_connected_graph(25, 0.1, seed=3)
        ibc = IncrementalBetweenness(graph)
        candidates = [
            (u, v)
            for u in range(25)
            for v in range(u + 1, 25)
            if not graph.has_edge(u, v)
        ]
        result = ibc.add_edge(*candidates[0])
        assert 0.0 <= result.skip_fraction <= 1.0
        assert result.sources_processed == 25
