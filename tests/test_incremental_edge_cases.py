"""Edge-case topologies for the incremental framework.

Each test targets a structural situation called out in Section 4 / Figure 3
of the paper (sibling-to-predecessor flips, multi-level rises and drops,
pivot discovery through long detours, repeated component surgery) on a
hand-built graph where the expected behaviour is easy to reason about.  The
oracle is always a from-scratch Brandes run on the final graph.
"""

import pytest

from repro.core import IncrementalBetweenness, UpdateCase
from repro.generators import complete_graph, cycle_graph, grid_graph, path_graph, star_graph
from repro.graph import Graph

from tests.helpers import assert_framework_matches_recompute


class TestDiamondAndLatticeTopologies:
    def test_addition_across_a_diamond_chain(self):
        # Stacked diamonds multiply shortest-path counts; the shortcut makes
        # sigma bookkeeping with large counts visible.
        g = Graph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6), (6, 7)]
        )
        ibc = IncrementalBetweenness(g)
        ibc.add_edge(0, 7)
        assert_framework_matches_recompute(ibc)

    def test_removal_inside_a_diamond_keeps_alternative_paths(self):
        g = Graph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)]
        )
        ibc = IncrementalBetweenness(g)
        ibc.remove_edge(1, 3)
        ibc.remove_edge(4, 6)
        assert_framework_matches_recompute(ibc)

    def test_grid_shortcut_and_removal(self):
        g = grid_graph(3, 4)
        ibc = IncrementalBetweenness(g)
        ibc.add_edge((0, 0), (2, 3))
        assert_framework_matches_recompute(ibc)
        ibc.remove_edge((1, 1), (1, 2))
        assert_framework_matches_recompute(ibc)


class TestMultiLevelStructuralChanges:
    def test_long_path_shortcut_rises_many_levels(self):
        g = path_graph(10)
        ibc = IncrementalBetweenness(g)
        result = ibc.add_edge(0, 9)
        assert UpdateCase.ADD_STRUCTURAL in result.case_counts
        assert_framework_matches_recompute(ibc)

    def test_long_cycle_removal_drops_many_levels(self):
        g = cycle_graph(12)
        ibc = IncrementalBetweenness(g)
        result = ibc.remove_edge(0, 11)
        assert UpdateCase.REMOVE_STRUCTURAL in result.case_counts
        assert_framework_matches_recompute(ibc)

    def test_shortcut_then_remove_original_route(self):
        g = path_graph(8)
        ibc = IncrementalBetweenness(g)
        ibc.add_edge(0, 7)          # ring
        ibc.add_edge(2, 6)          # chord
        ibc.remove_edge(3, 4)       # cut the original middle
        ibc.remove_edge(0, 7)       # cut the ring closure again
        assert_framework_matches_recompute(ibc)

    def test_pivot_reached_through_long_detour(self):
        # Removing (0, 1) forces the whole 1-2-3 branch to be re-reached
        # through the 0-4-5-6-7 detour; the only pivot is vertex 7.
        g = Graph.from_edges(
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (6, 7), (7, 3)]
        )
        ibc = IncrementalBetweenness(g)
        ibc.remove_edge(0, 1)
        assert_framework_matches_recompute(ibc)


class TestComponentSurgery:
    def test_disconnect_large_subtree_then_reattach_elsewhere(self):
        # A star of paths: cutting near the hub disconnects a long chain.
        g = Graph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 6), (0, 7)]
        )
        ibc = IncrementalBetweenness(g)
        ibc.remove_edge(0, 1)       # chain 1-2-3-4 disconnected
        assert_framework_matches_recompute(ibc)
        ibc.add_edge(4, 7)          # reattached from its far end
        assert_framework_matches_recompute(ibc)

    def test_merge_three_components_one_edge_at_a_time(self):
        g = Graph.from_edges([(0, 1), (2, 3), (4, 5)])
        ibc = IncrementalBetweenness(g)
        ibc.add_edge(1, 2)
        assert_framework_matches_recompute(ibc)
        ibc.add_edge(3, 4)
        assert_framework_matches_recompute(ibc)

    def test_isolate_a_hub_vertex_edge_by_edge(self):
        g = star_graph(6)
        ibc = IncrementalBetweenness(g)
        for leaf in range(1, 7):
            ibc.remove_edge(0, leaf)
            assert_framework_matches_recompute(ibc)
        assert all(v == pytest.approx(0.0) for v in ibc.vertex_betweenness().values())

    def test_bridge_replacement_swaps_central_edge(self):
        # Two cliques joined by bridge (2, 3); add a second bridge then
        # remove the first: the new bridge inherits the betweenness.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
        g = Graph.from_edges(edges)
        ibc = IncrementalBetweenness(g)
        ibc.add_edge(0, 5)
        ibc.remove_edge(2, 3)
        assert_framework_matches_recompute(ibc)
        scores = ibc.edge_betweenness()
        assert max(scores, key=scores.get) == (0, 5)


class TestUpdatesTouchingSpecialVertices:
    def test_update_incident_to_every_source(self):
        # In a complete graph every vertex is adjacent to the update, and
        # every source classifies it as a same-level (skip) case.
        g = complete_graph(6)
        ibc = IncrementalBetweenness(g)
        result = ibc.remove_edge(0, 1)
        assert result.case_counts.get(UpdateCase.SKIP, 0) >= 4
        assert_framework_matches_recompute(ibc)
        ibc.add_edge(0, 1)
        assert_framework_matches_recompute(ibc)

    def test_pendant_chain_growth(self):
        # Repeatedly extend a pendant path hanging off a cycle.
        g = cycle_graph(5)
        ibc = IncrementalBetweenness(g)
        previous = 0
        for new_vertex in (10, 11, 12, 13):
            anchor = previous if previous else 0
            ibc.add_edge(anchor, new_vertex)
            previous = new_vertex
            assert_framework_matches_recompute(ibc)

    def test_self_edge_between_degree_one_vertices(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
        ibc = IncrementalBetweenness(g)
        ibc.add_edge(2, 3)   # joins the two paths end to end
        ibc.add_edge(0, 4)   # closes the ring
        assert_framework_matches_recompute(ibc)

    def test_two_parallel_bridges_removed_in_sequence(self):
        # Two bridges between the same pair of communities: removing the
        # first is non-structural (the second keeps distances), removing the
        # second disconnects.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3), (2, 4)]
        g = Graph.from_edges(edges)
        ibc = IncrementalBetweenness(g)
        ibc.remove_edge(2, 3)
        assert_framework_matches_recompute(ibc)
        result = ibc.remove_edge(2, 4)
        assert result.disconnected_vertices > 0
        assert_framework_matches_recompute(ibc)
