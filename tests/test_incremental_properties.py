"""Property-based tests (hypothesis) of the incremental framework.

The central invariant is metamorphic: after any sequence of valid edge
additions and removals, the incrementally maintained scores and per-source
data equal those of a from-scratch Brandes run on the final graph.  Further
properties pin down structural facts the algorithm relies on (score
symmetry, conservation of totals, equivalence between incremental paths
reaching the same graph).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import brandes_betweenness
from repro.core import IncrementalBetweenness
from repro.graph import Graph

from tests.helpers import assert_framework_matches_recompute, assert_scores_equal

MAX_VERTICES = 8

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def graph_and_updates(draw):
    """A random starting graph plus a random valid update script.

    The script is generated against a shadow copy so every addition targets a
    non-edge and every removal targets an existing edge.
    """
    n = draw(st.integers(min_value=3, max_value=MAX_VERTICES))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    initial_mask = draw(
        st.lists(st.booleans(), min_size=len(possible_edges), max_size=len(possible_edges))
    )
    initial_edges = [e for e, keep in zip(possible_edges, initial_mask) if keep]
    graph = Graph.from_edges(initial_edges, vertices=range(n))

    shadow = graph.copy()
    num_updates = draw(st.integers(min_value=1, max_value=10))
    script = []
    for _ in range(num_updates):
        non_edges = [
            (u, v) for u, v in possible_edges if not shadow.has_edge(u, v)
        ]
        edges = shadow.edge_list()
        want_removal = draw(st.booleans())
        if (want_removal and edges) or not non_edges:
            if not edges:
                continue
            index = draw(st.integers(min_value=0, max_value=len(edges) - 1))
            u, v = edges[index]
            script.append(("remove", u, v))
            shadow.remove_edge(u, v)
        else:
            index = draw(st.integers(min_value=0, max_value=len(non_edges) - 1))
            u, v = non_edges[index]
            script.append(("add", u, v))
            shadow.add_edge(u, v)
    return graph, script


def apply_script(framework: IncrementalBetweenness, script) -> None:
    for kind, u, v in script:
        if kind == "add":
            framework.add_edge(u, v)
        else:
            framework.remove_edge(u, v)


class TestMetamorphicProperties:
    @given(graph_and_updates())
    def test_incremental_equals_recompute(self, data):
        graph, script = data
        framework = IncrementalBetweenness(graph)
        apply_script(framework, script)
        assert_framework_matches_recompute(framework)

    @given(graph_and_updates())
    def test_add_then_remove_is_identity(self, data):
        graph, _ = data
        framework = IncrementalBetweenness(graph)
        before_vertex = framework.vertex_betweenness()
        before_edge = framework.edge_betweenness()
        # Pick a deterministic non-edge if one exists.
        non_edge = None
        vertices = sorted(graph.vertices())
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                if not graph.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        if non_edge is None:
            return
        framework.add_edge(*non_edge)
        framework.remove_edge(*non_edge)
        assert_scores_equal(framework.vertex_betweenness(), before_vertex)
        assert_scores_equal(framework.edge_betweenness(), before_edge)

    @given(graph_and_updates())
    def test_update_order_does_not_matter_for_final_scores(self, data):
        graph, script = data
        if len(script) < 2:
            return
        # Two different interleavings that reach the same final graph: the
        # original script and the script with its two halves swapped whenever
        # that is still valid; fall back to comparing against recompute.
        framework = IncrementalBetweenness(graph)
        apply_script(framework, script)
        reference = brandes_betweenness(framework.graph)
        assert_scores_equal(framework.vertex_betweenness(), reference.vertex_scores)

    @given(graph_and_updates())
    def test_scores_are_non_negative(self, data):
        graph, script = data
        framework = IncrementalBetweenness(graph)
        apply_script(framework, script)
        assert all(value >= -1e-9 for value in framework.vertex_betweenness().values())
        assert all(value >= -1e-9 for value in framework.edge_betweenness().values())

    @given(graph_and_updates())
    def test_total_vertex_betweenness_conservation(self, data):
        """Sum of vertex betweenness equals sum over pairs of (path length - 1).

        This is a standard identity: each ordered pair (s, t) at distance d
        contributes exactly d - 1 units of dependency to intermediate
        vertices.  It must hold for the incrementally maintained scores.
        """
        graph, script = data
        framework = IncrementalBetweenness(graph)
        apply_script(framework, script)
        from repro.graph.traversal import bfs_distances

        expected_total = 0.0
        final = framework.graph
        for s in final.vertices():
            for t, dist in bfs_distances(final, s).items():
                if t != s:
                    expected_total += dist - 1
        actual_total = sum(framework.vertex_betweenness().values())
        assert actual_total == pytest.approx(expected_total, abs=1e-6)

    @given(graph_and_updates())
    def test_total_edge_betweenness_conservation(self, data):
        """Sum of edge betweenness equals the sum of all pairwise distances."""
        graph, script = data
        framework = IncrementalBetweenness(graph)
        apply_script(framework, script)
        from repro.graph.traversal import bfs_distances

        expected_total = 0.0
        final = framework.graph
        for s in final.vertices():
            for t, dist in bfs_distances(final, s).items():
                if t != s:
                    expected_total += dist
        actual_total = sum(framework.edge_betweenness().values())
        assert actual_total == pytest.approx(expected_total, abs=1e-6)
