"""Framework-level tests for edge removals, covering every paper case."""

import pytest

from repro.core import IncrementalBetweenness, UpdateCase
from repro.exceptions import UpdateError
from repro.graph import Graph

from tests.helpers import random_connected_graph
from tests.helpers import assert_framework_matches_recompute


class TestRemovalCases:
    def test_removal_without_structural_change(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        ibc = IncrementalBetweenness(g)
        result = ibc.remove_edge(1, 3)
        assert UpdateCase.REMOVE_NO_STRUCTURE in result.case_counts
        assert_framework_matches_recompute(ibc)

    def test_removal_with_level_drop(self, cycle6):
        ibc = IncrementalBetweenness(cycle6)
        result = ibc.remove_edge(0, 1)
        assert UpdateCase.REMOVE_STRUCTURAL in result.case_counts
        assert_framework_matches_recompute(ibc)

    def test_removal_same_level_is_skipped(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        ibc = IncrementalBetweenness(g)
        result = ibc.remove_edge(1, 2)
        # From source 0 both endpoints sit at level 1 -> skip for that source.
        assert result.case_counts.get(UpdateCase.SKIP, 0) >= 1
        assert_framework_matches_recompute(ibc)

    def test_removal_disconnects_suffix(self, path5):
        ibc = IncrementalBetweenness(path5)
        result = ibc.remove_edge(2, 3)
        assert result.disconnected_vertices > 0
        assert_framework_matches_recompute(ibc)
        # Edge score entry of the removed edge is gone.
        assert (2, 3) not in ibc.edge_betweenness()

    def test_removal_isolates_leaf(self, star_graph5):
        ibc = IncrementalBetweenness(star_graph5)
        ibc.remove_edge(0, 3)
        assert_framework_matches_recompute(ibc)
        assert ibc.vertex_score(3) == pytest.approx(0.0)

    def test_removal_of_bridge_between_triangles(self, two_triangles_bridge):
        ibc = IncrementalBetweenness(two_triangles_bridge)
        ibc.remove_edge(2, 3)
        assert_framework_matches_recompute(ibc)
        # Both triangles survive as separate components with zero betweenness.
        assert all(
            value == pytest.approx(0.0) for value in ibc.vertex_betweenness().values()
        )

    def test_removal_with_reconnection_through_long_path(self):
        # Removing the short branch forces traffic over the long branch.
        g = Graph.from_edges(
            [(0, 1), (1, 5), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        ibc = IncrementalBetweenness(g)
        ibc.remove_edge(1, 5)
        assert_framework_matches_recompute(ibc)

    def test_remove_then_re_add(self, cycle6):
        ibc = IncrementalBetweenness(cycle6)
        ibc.remove_edge(0, 1)
        ibc.add_edge(0, 1)
        assert_framework_matches_recompute(ibc)
        # Scores must be back to the initial cycle values.
        values = list(ibc.vertex_betweenness().values())
        assert all(value == pytest.approx(values[0]) for value in values)

    def test_dismantle_small_graph_completely(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        ibc = IncrementalBetweenness(g)
        for u, v in list(g.edges()):
            ibc.remove_edge(u, v)
            assert_framework_matches_recompute(ibc)
        assert all(value == pytest.approx(0.0) for value in ibc.vertex_betweenness().values())
        assert ibc.edge_betweenness() == {}


class TestRemovalErrors:
    def test_missing_edge_rejected(self, path5):
        ibc = IncrementalBetweenness(path5)
        with pytest.raises(UpdateError):
            ibc.remove_edge(0, 4)

    def test_unknown_vertices_rejected(self, path5):
        ibc = IncrementalBetweenness(path5)
        with pytest.raises(UpdateError):
            ibc.remove_edge(0, 999)


class TestRemovalSequences:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_shrinking_random_graph(self, seed):
        graph = random_connected_graph(12, 0.2, seed)
        ibc = IncrementalBetweenness(graph)
        edges = graph.edge_list()
        for u, v in edges[: min(8, len(edges))]:
            ibc.remove_edge(u, v)
        assert_framework_matches_recompute(ibc)
