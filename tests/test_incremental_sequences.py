"""Differential tests of long mixed add/remove sequences (metamorphic oracle).

After every update the framework's scores and stored per-source data must
equal a from-scratch Brandes recomputation.  These sequences exercise the
interaction between cases (structural change followed by reconnection,
repeated disconnection, churn on the same region of the graph) that the
per-case unit tests cannot reach.
"""

import random

import pytest

from repro.core import IncrementalBetweenness
from repro.graph import Graph

from tests.helpers import random_graph
from tests.helpers import assert_framework_matches_recompute


def run_random_sequence(n, p, seed, steps, check_every=1, removal_bias=0.5):
    """Drive a framework with a random update sequence, checking periodically."""
    rng = random.Random(seed)
    graph = random_graph(n, p, seed)
    ibc = IncrementalBetweenness(graph)
    shadow = graph.copy()
    for step in range(steps):
        do_removal = rng.random() < removal_bias and shadow.num_edges > 1
        if do_removal:
            u, v = rng.choice(shadow.edge_list())
            ibc.remove_edge(u, v)
            shadow.remove_edge(u, v)
        else:
            for _ in range(200):
                u = rng.randrange(n + 2)
                v = rng.randrange(n + 2)
                if u == v:
                    continue
                if shadow.has_vertex(u) and shadow.has_vertex(v) and shadow.has_edge(u, v):
                    continue
                break
            ibc.add_edge(u, v)
            if not shadow.has_vertex(u):
                shadow.add_vertex(u)
            if not shadow.has_vertex(v):
                shadow.add_vertex(v)
            shadow.add_edge(u, v)
        if (step + 1) % check_every == 0:
            assert_framework_matches_recompute(ibc)
    assert_framework_matches_recompute(ibc)
    return ibc


class TestMixedSequences:
    @pytest.mark.parametrize("seed", [11, 23, 35, 47])
    def test_small_dense_graphs(self, seed):
        run_random_sequence(n=9, p=0.3, seed=seed, steps=20)

    @pytest.mark.parametrize("seed", [101, 202])
    def test_medium_sparse_graphs(self, seed):
        run_random_sequence(n=18, p=0.1, seed=seed, steps=16, check_every=2)

    def test_removal_heavy_sequence(self):
        run_random_sequence(n=12, p=0.35, seed=7, steps=20, removal_bias=0.8)

    def test_addition_heavy_sequence(self):
        run_random_sequence(n=12, p=0.05, seed=9, steps=20, removal_bias=0.2)

    def test_churn_on_same_edge(self, two_triangles_bridge):
        ibc = IncrementalBetweenness(two_triangles_bridge)
        for _ in range(4):
            ibc.remove_edge(2, 3)
            assert_framework_matches_recompute(ibc)
            ibc.add_edge(2, 3)
            assert_framework_matches_recompute(ibc)

    def test_component_split_and_merge_cycle(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        ibc = IncrementalBetweenness(g)
        ibc.remove_edge(2, 3)      # split
        ibc.add_edge(0, 5)         # merge the two halves the other way round
        ibc.remove_edge(4, 5)      # split again
        ibc.add_edge(2, 3)         # restore the original bridge
        assert_framework_matches_recompute(ibc)

    def test_rebuild_graph_edge_by_edge(self, two_triangles_bridge):
        # Start from the empty graph on the same vertices and stream all edges.
        empty = Graph()
        for vertex in two_triangles_bridge.vertices():
            empty.add_vertex(vertex)
        ibc = IncrementalBetweenness(empty)
        for u, v in two_triangles_bridge.edges():
            ibc.add_edge(u, v)
        assert_framework_matches_recompute(ibc)

    def test_tear_down_then_rebuild(self, cycle6):
        ibc = IncrementalBetweenness(cycle6)
        edges = cycle6.edge_list()
        for u, v in edges:
            ibc.remove_edge(u, v)
        for u, v in edges:
            ibc.add_edge(u, v)
        assert_framework_matches_recompute(ibc)
