"""End-to-end integration tests chaining the major subsystems together.

These mimic what the benchmark harness and the examples do, at a very small
scale, so that a regression anywhere in the pipeline (generators -> core ->
storage -> parallel -> applications -> analysis) is caught by the unit-test
run as well.
"""

import pytest

from repro.algorithms import brandes_betweenness
from repro.analysis import Variant, compare_rankings, measure_stream_speedups
from repro.applications import TopKMonitor, girvan_newman
from repro.core import IncrementalBetweenness
from repro.generators import (
    addition_stream,
    load_dataset,
    removal_stream,
    synthetic_social_graph,
)
from repro.generators.streams import EvolvingGraph
from repro.parallel import MapReduceBetweenness, simulate_online_updates
from repro.storage import DiskBDStore

from tests.helpers import assert_framework_matches_recompute, assert_scores_equal


@pytest.fixture(scope="module")
def social_graph():
    return synthetic_social_graph(70, rng=17)


class TestFullPipelines:
    def test_dataset_to_speedup_measurement(self):
        graph = load_dataset("wikielections", num_vertices=70, rng=2)
        updates = addition_stream(graph, 3, rng=3) + removal_stream(graph, 3, rng=4)
        series = measure_stream_speedups(graph, updates, Variant.MO, label="wiki")
        assert len(series.speedups) == 6
        assert series.summary().minimum > 0

    def test_disk_backed_framework_survives_long_mixed_stream(self, social_graph, tmp_path):
        store = DiskBDStore(social_graph.vertex_list(), path=tmp_path / "bd.bin")
        framework = IncrementalBetweenness(social_graph, store=store)
        stream = addition_stream(social_graph, 4, rng=5) + removal_stream(
            social_graph, 4, rng=6
        )
        framework.process_stream(stream)
        assert_framework_matches_recompute(framework)
        store.close()

    def test_mapreduce_and_single_machine_agree(self, social_graph):
        single = IncrementalBetweenness(social_graph)
        cluster = MapReduceBetweenness(social_graph, num_mappers=3)
        stream = addition_stream(social_graph, 3, rng=7)
        for update in stream:
            single.apply(update)
            cluster.apply(update)
        assert_scores_equal(single.vertex_betweenness(), cluster.vertex_betweenness())
        assert_scores_equal(single.edge_betweenness(), cluster.edge_betweenness())

    def test_online_replay_then_community_detection(self, social_graph):
        evolving = EvolvingGraph.from_graph(social_graph, rng=8)
        prefix = evolving.num_edges - 5
        base = evolving.base_graph(prefix)
        replay = simulate_online_updates(
            base, evolving.future_updates(prefix), num_mappers=2
        )
        assert replay.num_updates == 5
        result = girvan_newman(evolving.base_graph(), max_removals=5)
        assert result.edges_processed == 5

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_monitor_ranking_matches_recomputed_ranking(self, social_graph):
        monitor = TopKMonitor(social_graph, k=5)
        updates = addition_stream(social_graph, 3, rng=9)
        snapshot = monitor.process_stream(updates)[-1]
        reference = brandes_betweenness(monitor._framework.graph).vertex_scores
        expected_top = sorted(reference.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:5]
        assert snapshot.vertex_ranking() == tuple(v for v, _ in expected_top)

    def test_incremental_scores_correlate_perfectly_with_recompute(self, social_graph):
        framework = IncrementalBetweenness(social_graph)
        for update in addition_stream(social_graph, 4, rng=10):
            framework.apply(update)
        reference = brandes_betweenness(framework.graph).vertex_scores
        comparison = compare_rankings(framework.vertex_betweenness(), reference, k=10)
        assert comparison.spearman == pytest.approx(1.0)
        assert comparison.top_k_overlap == pytest.approx(1.0)
        assert comparison.mean_absolute_error < 1e-6
