"""Bit-identity of the array kernel against the dict backend.

The ``arrays`` backend of :class:`IncrementalBetweenness` promises *exact*
(bit-for-bit) equality with the classic ``dicts`` backend — not approximate
agreement.  These tests exercise that promise with hypothesis-generated
random graphs and random valid update scripts (including vertex births and
disconnecting removals), on both the in-RAM column store and the mmap /
buffered disk stores, plus the standalone vectorized Brandes and the CSR
mirror's ordering contract.

Equality below is always ``==`` on floats, never ``pytest.approx``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.core.kernel import brandes_betweenness_arrays
from repro.exceptions import ConfigurationError
from repro.graph import CSRGraph, Graph
from repro.storage import ArrayBDStore, DiskBDStore, VertexIndex

MAX_VERTICES = 8

settings.register_profile(
    "repro-kernel",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-kernel")


@st.composite
def graph_and_updates(draw):
    """A random graph plus a valid update script with births and removals.

    Generated against a shadow copy so every addition targets a non-edge,
    every removal an existing edge; some additions attach brand-new
    vertices (stream births), and removals may disconnect components.
    """
    n = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    graph = Graph.from_edges(
        [e for e, keep in zip(possible, mask) if keep], vertices=range(n)
    )

    shadow = graph.copy()
    next_vertex = n
    script = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        choice = draw(st.integers(min_value=0, max_value=3))
        edges = shadow.edge_list()
        if choice == 0 and edges:  # removal (may disconnect)
            u, v = edges[draw(st.integers(min_value=0, max_value=len(edges) - 1))]
            script.append(EdgeUpdate.removal(u, v))
            shadow.remove_edge(u, v)
        elif choice == 1:  # vertex birth
            verts = shadow.vertex_list()
            u = verts[draw(st.integers(min_value=0, max_value=len(verts) - 1))]
            script.append(EdgeUpdate.addition(u, next_vertex))
            shadow.add_edge(u, next_vertex)
            next_vertex += 1
        else:  # internal addition
            verts = shadow.vertex_list()
            non_edges = [
                (u, v)
                for i, u in enumerate(verts)
                for v in verts[i + 1 :]
                if not shadow.has_edge(u, v)
            ]
            if not non_edges:
                continue
            u, v = non_edges[
                draw(st.integers(min_value=0, max_value=len(non_edges) - 1))
            ]
            script.append(EdgeUpdate.addition(u, v))
            shadow.add_edge(u, v)
    return graph, script


def assert_bit_identical(arrays_framework, dicts_framework, context=""):
    """Exact dict equality of both score mappings (floats compared with ==)."""
    va = arrays_framework.vertex_betweenness()
    vd = dicts_framework.vertex_betweenness()
    assert va == vd, f"{context}: vertex scores diverge: " + repr(
        {k: (va.get(k), vd.get(k)) for k in set(va) | set(vd) if va.get(k) != vd.get(k)}
    )
    ea = arrays_framework.edge_betweenness()
    ed = dicts_framework.edge_betweenness()
    assert ea == ed, f"{context}: edge scores diverge: " + repr(
        {k: (ea.get(k), ed.get(k)) for k in set(ea) | set(ed) if ea.get(k) != ed.get(k)}
    )


class TestBackendBitIdentity:
    @given(graph_and_updates())
    def test_single_update_stream(self, case):
        graph, script = case
        arrays = IncrementalBetweenness(graph, backend="arrays")
        dicts = IncrementalBetweenness(graph, backend="dicts")
        assert_bit_identical(arrays, dicts, "bootstrap")
        for i, update in enumerate(script):
            arrays.apply(update)
            dicts.apply(update)
            assert_bit_identical(arrays, dicts, f"after update {i} ({update})")

    @given(graph_and_updates(), st.integers(min_value=1, max_value=4))
    def test_batched_stream(self, case, batch_size):
        graph, script = case
        arrays = IncrementalBetweenness(graph, backend="arrays")
        dicts = IncrementalBetweenness(graph, backend="dicts")
        for start in range(0, len(script), batch_size):
            chunk = script[start : start + batch_size]
            result_arrays = arrays.apply_updates(chunk)
            result_dicts = dicts.apply_updates(chunk)
            # The vectorized peek must make exactly the scalar decisions.
            assert result_arrays.sources_loaded == result_dicts.sources_loaded
            assert (
                result_arrays.sources_peek_skipped
                == result_dicts.sources_peek_skipped
            )
            assert_bit_identical(arrays, dicts, f"after batch at {start}")

    @given(graph_and_updates())
    def test_stored_records_match(self, case):
        graph, script = case
        arrays = IncrementalBetweenness(graph, backend="arrays")
        dicts = IncrementalBetweenness(graph, backend="dicts")
        for update in script:
            arrays.apply(update)
            dicts.apply(update)
        assert set(arrays.store.sources()) == set(dicts.store.sources())
        for source in dicts.store.sources():
            flat = arrays.store.get(source)
            record = dicts.store.get(source)
            assert flat.distance == record.distance
            assert flat.sigma == record.sigma
            assert flat.delta == record.delta

    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_disk_store_backed_kernel(self, use_mmap, tmp_path):
        rng = random.Random(42)
        graph = Graph()
        for v in range(12):
            graph.add_vertex(v)
        for u in range(12):
            for v in range(u + 1, 12):
                if rng.random() < 0.3:
                    graph.add_edge(u, v)
        store = DiskBDStore(
            graph.vertex_list(),
            path=tmp_path / f"bd-{use_mmap}.bin",
            use_mmap=use_mmap,
        )
        arrays = IncrementalBetweenness(graph, store=store, backend="arrays")
        dicts = IncrementalBetweenness(graph, backend="dicts")
        assert_bit_identical(arrays, dicts, "disk bootstrap")
        updates = [
            EdgeUpdate.addition(0, 12),
            EdgeUpdate.removal(*graph.edge_list()[0]),
            EdgeUpdate.addition(3, 13),
            EdgeUpdate.removal(*graph.edge_list()[1]),
        ]
        arrays.apply_updates(updates)
        dicts.apply_updates(updates)
        assert_bit_identical(arrays, dicts, "disk batched updates")
        store.close()

    def test_restricted_partitions_sum_to_exact(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        parts = [[0, 1], [2, 3]]
        partials = [
            IncrementalBetweenness(graph, sources=p, backend="arrays") for p in parts
        ]
        exact = IncrementalBetweenness(graph, backend="dicts")
        for framework in partials + [exact]:
            framework.add_edge(0, 2)
        merged = {}
        for framework in partials:
            for vertex, score in framework.vertex_betweenness().items():
                merged[vertex] = merged.get(vertex, 0.0) + score
        expected = exact.vertex_betweenness()
        assert set(merged) == set(expected)
        for vertex in expected:
            assert merged[vertex] == pytest.approx(expected[vertex], abs=1e-12)

    def test_from_source_data_matches_dict_backend(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        seed = IncrementalBetweenness(graph, backend="dicts")
        snapshot = seed.store.snapshot()
        arrays = IncrementalBetweenness.from_source_data(
            graph, snapshot, restricted=False, backend="arrays"
        )
        dicts = IncrementalBetweenness.from_source_data(
            graph, snapshot, restricted=False, backend="dicts"
        )
        assert_bit_identical(arrays, dicts, "from_source_data")
        arrays.add_edge(0, 2)
        dicts.add_edge(0, 2)
        assert_bit_identical(arrays, dicts, "from_source_data + update")


class TestBrandesArraysBackend:
    @given(graph_and_updates())
    def test_static_scores_bit_identical(self, case):
        graph, _ = case
        scalar = brandes_betweenness(graph, collect_source_data=True)
        vector = brandes_betweenness_arrays(graph, collect_source_data=True)
        assert scalar.vertex_scores == vector.vertex_scores
        assert scalar.edge_scores == vector.edge_scores
        assert set(scalar.source_data) == set(vector.source_data)
        for source, record in scalar.source_data.items():
            flat = vector.source_data[source]
            assert record.distance == flat.distance
            assert record.sigma == flat.sigma
            assert record.delta == flat.delta

    def test_backend_parameter_delegates(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        scalar = brandes_betweenness(graph)
        vector = brandes_betweenness(graph, backend="arrays")
        assert scalar.vertex_scores == vector.vertex_scores
        assert scalar.edge_scores == vector.edge_scores

    def test_arrays_rejects_predecessors(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            brandes_betweenness(graph, backend="arrays", keep_predecessors=True)

    def test_arrays_accepts_directed(self):
        directed = Graph(directed=True)
        directed.add_edge(0, 1)
        directed.add_edge(1, 2)
        scalar = brandes_betweenness(directed)
        vector = brandes_betweenness(directed, backend="arrays")
        assert scalar.vertex_scores == vector.vertex_scores
        assert scalar.edge_scores == vector.edge_scores


class TestCSRMirror:
    def test_neighbor_order_mirrors_graph(self):
        graph = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        index = VertexIndex(graph.vertex_list())
        csr = CSRGraph.from_graph(graph, index)
        # Removal + re-add moves the neighbor to the end in both structures.
        graph.remove_edge(0, 2)
        csr.remove_edge(0, 2)
        graph.add_edge(0, 2)
        csr.add_edge(0, 2)
        for label in graph.vertices():
            expected = [index.slot(n) for n in graph.out_neighbors(label)]
            assert csr.neighbors(index.slot(label)) == expected

    def test_compiled_arrays_amortize_rebuilds(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        index = VertexIndex(graph.vertex_list())
        csr = CSRGraph.from_graph(graph, index)
        csr.compiled()
        builds = csr.rebuild_count
        csr.compiled()
        assert csr.rebuild_count == builds  # cached, no rebuild
        csr.add_edge(0, 3)
        csr.remove_edge(0, 3)
        csr.add_edge(0, 2)
        csr.compiled()
        assert csr.rebuild_count == builds + 1  # three mutations, one rebuild

    def test_compiled_slices_match_adjacency(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        index = VertexIndex(graph.vertex_list())
        csr = CSRGraph.from_graph(graph, index)
        indptr, indices, edge_ids, edge_pairs = csr.compiled()
        for slot in range(csr.num_vertices):
            slice_ = indices[indptr[slot] : indptr[slot + 1]].tolist()
            assert slice_ == csr.neighbors(slot)
        assert len(edge_pairs) == csr.num_edges
        # Every directed entry's id resolves to the canonical pair it sits on.
        for slot in range(csr.num_vertices):
            for offset in range(int(indptr[slot]), int(indptr[slot + 1])):
                neighbor = int(indices[offset])
                pair = edge_pairs[int(edge_ids[offset])]
                assert pair == ((slot, neighbor) if slot <= neighbor else (neighbor, slot))
        for i, j in edge_pairs:
            assert i <= j
            assert csr.has_edge(i, j)


class TestArrayStore:
    def test_roundtrip_and_growth(self):
        store = ArrayBDStore(range(4), capacity=4)
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        result = brandes_betweenness(graph, collect_source_data=True)
        for record in result.source_data.values():
            store.put(record)
        assert len(store) == 4
        for source, record in result.source_data.items():
            loaded = store.get(source)
            assert loaded.distance == record.distance
            assert loaded.sigma == record.sigma
            assert loaded.delta == record.delta
        # Growth keeps existing records intact.
        for vertex in range(4, 9):
            store.register_vertex(vertex)
        assert store.capacity >= 9
        assert store.get(0).distance == result.source_data[0].distance
        assert store.endpoint_distances(0, 1, 8) == (1, None)

    def test_snapshot_is_independent(self):
        store = ArrayBDStore(range(3))
        store.add_source(0)
        snapshot = store.snapshot()
        snapshot[0].distance[1] = 5
        assert store.get(0).distance == {0: 0}

    def test_arrays_backend_rejects_dict_store(self):
        from repro.storage import InMemoryBDStore

        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            IncrementalBetweenness(
                graph, store=InMemoryBDStore(), backend="arrays"
            )

    def test_unknown_backend_rejected(self):
        graph = Graph.from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            IncrementalBetweenness(graph, backend="sparse")

    def test_restricted_instance_allocates_rows_not_slots(self):
        # A partition worker's store must be proportional to its own
        # sources, not to the whole vertex set (capacity^2 would multiply
        # by the partition count across mappers).
        graph = Graph.from_edges([(v, v + 1) for v in range(199)])
        framework = IncrementalBetweenness(
            graph, sources=list(range(10)), backend="arrays"
        )
        store = framework.store
        assert isinstance(store, ArrayBDStore)
        assert store._dist.shape[0] < 50  # rows ~ owned sources, not 200
        assert store.capacity >= 200  # columns still cover every vertex

    def test_bootstrap_sigma_overflow_raises(self):
        # Stacked 2-vertex layers double the path count per layer; past
        # 2**63 the int64 sigma column cannot represent it and the kernel
        # must raise (the dict backend with a columnar store raises the
        # same error at encode time) instead of silently wrapping.
        from repro.core.kernel import brandes_betweenness_arrays
        from repro.exceptions import StoreCorruptedError

        graph = Graph()
        previous = [0]
        next_vertex = 1
        for _ in range(66):
            current = [next_vertex, next_vertex + 1]
            next_vertex += 2
            for a in previous:
                for b in current:
                    graph.add_edge(a, b)
            previous = current
        with pytest.raises(StoreCorruptedError):
            brandes_betweenness_arrays(graph, sources=[0])
