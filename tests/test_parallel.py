"""Tests for the MapReduce simulation, scaling models and online replay."""

import pytest

from repro.algorithms import brandes_betweenness
from repro.core import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.generators import synthetic_social_graph
from repro.generators.streams import EvolvingGraph
from repro.parallel import (
    MapReduceBetweenness,
    OnlineCapacityModel,
    merge_partial_scores,
    required_workers,
    simulate_online_updates,
    strong_scaling,
    weak_scaling,
)

from tests.helpers import random_connected_graph
from tests.helpers import assert_scores_equal


class TestMergePartialScores:
    def test_sums_by_key(self):
        merged = merge_partial_scores([{"a": 1.0, "b": 2.0}, {"a": 0.5}])
        assert merged == {"a": 1.5, "b": 2.0}

    def test_empty(self):
        assert merge_partial_scores([]) == {}


class TestMapReduce:
    def test_reduced_scores_match_brandes_after_updates(self):
        graph = random_connected_graph(15, 0.15, seed=4)
        cluster = MapReduceBetweenness(graph, num_mappers=4)
        cluster.add_edge(0, 14)
        removal = graph.edge_list()[2]
        cluster.remove_edge(*removal)
        reference = brandes_betweenness(cluster.mappers[0].graph)
        assert_scores_equal(cluster.vertex_betweenness(), reference.vertex_scores)
        assert_scores_equal(cluster.edge_betweenness(), reference.edge_scores)

    def test_partitions_cover_all_sources(self):
        graph = random_connected_graph(11, 0.2, seed=6)
        cluster = MapReduceBetweenness(graph, num_mappers=3)
        covered = sorted(v for p in cluster.partitions for v in p)
        assert covered == sorted(graph.vertices())

    def test_report_timings(self, cycle6):
        cluster = MapReduceBetweenness(cycle6, num_mappers=2)
        report = cluster.add_edge(0, 3)
        assert len(report.mapper_seconds) == 2
        assert report.wall_clock_seconds <= report.cumulative_seconds + 1e-9
        assert report.merge_seconds >= 0.0

    def test_new_vertex_assigned_to_exactly_one_mapper(self, cycle6):
        cluster = MapReduceBetweenness(cycle6, num_mappers=3)
        cluster.add_edge(0, 99)
        owners = [m for m in cluster.mappers if 99 in list(m.store.sources())]
        assert len(owners) == 1
        reference = brandes_betweenness(cluster.mappers[0].graph)
        assert_scores_equal(cluster.vertex_betweenness(), reference.vertex_scores)

    def test_single_mapper_equals_sequential(self, two_triangles_bridge):
        cluster = MapReduceBetweenness(two_triangles_bridge, num_mappers=1)
        cluster.remove_edge(2, 3)
        reference = brandes_betweenness(cluster.mappers[0].graph)
        assert_scores_equal(cluster.vertex_betweenness(), reference.vertex_scores)

    def test_invalid_mapper_count(self, cycle6):
        with pytest.raises(ConfigurationError):
            MapReduceBetweenness(cycle6, num_mappers=0)

    def test_process_stream(self, cycle6):
        cluster = MapReduceBetweenness(cycle6, num_mappers=2)
        reports = cluster.process_stream(
            [EdgeUpdate.addition(0, 2), EdgeUpdate.removal(3, 4)]
        )
        assert len(reports) == 2


class TestCapacityModel:
    def test_update_time_decreases_with_workers(self):
        model = OnlineCapacityModel(time_per_source=0.01, num_sources=1000, merge_time=0.1)
        assert model.update_time(1) == pytest.approx(10.1)
        assert model.update_time(10) == pytest.approx(1.1)
        assert model.update_time(10) < model.update_time(1)

    def test_is_online(self):
        model = OnlineCapacityModel(time_per_source=0.01, num_sources=100, merge_time=0.0)
        assert not model.is_online(1, interarrival_time=0.5)
        assert model.is_online(10, interarrival_time=0.5)

    def test_required_workers_formula(self):
        # tS*n / (tI - tM) = 0.01*1000 / (2 - 0.5) = 6.67 -> 7 workers.
        assert required_workers(0.01, 1000, interarrival_time=2.0, merge_time=0.5) == 7

    def test_required_workers_impossible_rate(self):
        model = OnlineCapacityModel(time_per_source=1.0, num_sources=10, merge_time=1.0)
        with pytest.raises(ConfigurationError):
            model.required_workers(1.5)

    def test_invalid_worker_count(self):
        model = OnlineCapacityModel(0.01, 10)
        with pytest.raises(ConfigurationError):
            model.update_time(0)


class TestScalingCurves:
    def test_strong_scaling_monotone(self):
        model = OnlineCapacityModel(time_per_source=0.02, num_sources=500, merge_time=0.05)
        curve = strong_scaling(model, [1, 2, 4, 8], num_updates=100)
        times = [point.seconds_per_update for point in curve]
        assert times == sorted(times, reverse=True)
        assert curve[0].total_seconds == pytest.approx(100 * times[0])

    def test_weak_scaling_total_roughly_flat(self):
        model = OnlineCapacityModel(time_per_source=0.02, num_sources=500, merge_time=0.0)
        curve = weak_scaling(model, [1, 2, 4], updates_per_worker_ratio=10)
        totals = [point.total_seconds for point in curve.values()]
        assert max(totals) / min(totals) < 1.2

    def test_weak_scaling_invalid_ratio(self):
        model = OnlineCapacityModel(0.01, 100)
        with pytest.raises(ConfigurationError):
            weak_scaling(model, [1, 2], updates_per_worker_ratio=0)


class TestOnlineReplay:
    def _evolving(self, seed=3):
        graph = synthetic_social_graph(60, rng=seed)
        return EvolvingGraph.from_graph(graph, rng=seed, mean_interarrival=0.5)

    def test_replay_produces_one_record_per_update(self):
        evolving = self._evolving()
        prefix = evolving.num_edges - 12
        result = simulate_online_updates(
            evolving.base_graph(prefix), evolving.future_updates(prefix), num_mappers=2
        )
        assert result.num_updates == 12
        assert 0.0 <= result.missed_fraction <= 1.0
        assert result.as_table_row()[0] == 2

    def test_more_mappers_do_not_increase_misses(self):
        evolving = self._evolving(seed=9)
        prefix = evolving.num_edges - 10
        base = evolving.base_graph(prefix)
        updates = evolving.future_updates(prefix)
        # Speed arrivals up so that a single worker struggles.
        few = simulate_online_updates(base, updates, num_mappers=1, time_scale=0.001)
        many = simulate_online_updates(base, updates, num_mappers=50, time_scale=0.001)
        assert many.missed_fraction <= few.missed_fraction

    def test_requires_timestamps(self, cycle6):
        with pytest.raises(ConfigurationError):
            simulate_online_updates(cycle6, [EdgeUpdate.addition(0, 3)])

    def test_requires_updates(self, cycle6):
        with pytest.raises(ConfigurationError):
            simulate_online_updates(cycle6, [])

    def test_average_delay_zero_when_nothing_missed(self):
        evolving = self._evolving(seed=11)
        prefix = evolving.num_edges - 5
        result = simulate_online_updates(
            evolving.base_graph(prefix),
            evolving.future_updates(prefix),
            num_mappers=4,
            time_scale=1000.0,  # arrivals far apart: nothing can be missed
        )
        assert result.num_missed == 0
        assert result.average_delay == 0.0
