"""Tests for the multiprocess static Brandes baseline."""

import pytest

from repro.algorithms import brandes_betweenness, parallel_brandes_betweenness
from repro.exceptions import ConfigurationError
from repro.generators import synthetic_social_graph

from tests.helpers import random_connected_graph
from tests.helpers import assert_scores_equal


class TestParallelBrandes:
    def test_single_worker_matches_sequential(self, two_triangles_bridge):
        sequential = brandes_betweenness(two_triangles_bridge)
        parallel = parallel_brandes_betweenness(two_triangles_bridge, num_workers=1)
        assert_scores_equal(parallel.vertex_scores, sequential.vertex_scores)
        assert_scores_equal(parallel.edge_scores, sequential.edge_scores)

    def test_two_workers_match_sequential(self):
        graph = random_connected_graph(20, 0.15, seed=8)
        sequential = brandes_betweenness(graph)
        parallel = parallel_brandes_betweenness(graph, num_workers=2)
        assert_scores_equal(parallel.vertex_scores, sequential.vertex_scores)
        assert_scores_equal(parallel.edge_scores, sequential.edge_scores)

    def test_chunked_dispatch_matches_sequential(self):
        graph = synthetic_social_graph(50, rng=4)
        sequential = brandes_betweenness(graph)
        parallel = parallel_brandes_betweenness(
            graph, num_workers=2, chunks_per_worker=3
        )
        assert_scores_equal(parallel.vertex_scores, sequential.vertex_scores)

    def test_invalid_arguments(self, path5):
        with pytest.raises(ConfigurationError):
            parallel_brandes_betweenness(path5, num_workers=0)
        with pytest.raises(ConfigurationError):
            parallel_brandes_betweenness(path5, num_workers=2, chunks_per_worker=0)
