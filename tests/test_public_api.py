"""Public-API snapshot: the import surface is frozen against a golden file.

``docs/api.md`` documents the supported surface; this test pins it.  Any
addition, removal or rename in the ``repro``, ``repro.api`` or
``repro.storage`` export lists must update ``tests/data/public_api.txt`` in
the same change (and ``docs/api.md`` with it) — silent drift between the
code, the docs and the golden file is exactly what this guards against.

To regenerate after an intentional change::

    PYTHONPATH=src python tests/test_public_api.py --regenerate
"""

from pathlib import Path

GOLDEN = Path(__file__).parent / "data" / "public_api.txt"


def _current_surface() -> str:
    import repro
    import repro.api
    import repro.storage

    lines = []
    for module in (repro, repro.api, repro.storage):
        for name in sorted(module.__all__):
            lines.append(f"{module.__name__}.{name}")
    return "\n".join(lines) + "\n"


def test_all_names_resolve():
    import repro
    import repro.api
    import repro.storage

    for module in (repro, repro.api, repro.storage):
        missing = [name for name in module.__all__ if not hasattr(module, name)]
        assert not missing, f"{module.__name__}.__all__ names missing: {missing}"


def test_public_surface_matches_golden_file():
    assert GOLDEN.exists(), (
        f"golden file {GOLDEN} is missing; regenerate it with "
        "`PYTHONPATH=src python tests/test_public_api.py --regenerate`"
    )
    expected = GOLDEN.read_text(encoding="utf-8")
    actual = _current_surface()
    assert actual == expected, (
        "public import surface changed; if intentional, update docs/api.md "
        "and regenerate tests/data/public_api.txt with "
        "`PYTHONPATH=src python tests/test_public_api.py --regenerate`\n"
        + "".join(
            f"  {line}\n"
            for line in sorted(
                set(actual.splitlines()) ^ set(expected.splitlines())
            )
        )
    )


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(_current_surface(), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        print(_current_surface(), end="")
