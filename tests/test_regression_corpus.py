"""Seeded regression corpus: replayed streams with frozen expected scores.

Each ``tests/data/stream_*.json`` file is a small evolving-graph stream —
initial graph, batched update list, and the exact vertex/edge betweenness
after every batch as computed by the reference ``dicts`` backend when the
corpus was frozen.  The streams pin historical bug shapes:

* ``stream_remove_readd_undirected`` — a re-added edge's score must
  restart from zero, not resurrect its pre-removal value (PR 1);
* ``stream_directed_accumulation`` — directed repairs exercising the
  directed dependency-accumulation region scan (PR 4);
* ``stream_batch_births_disconnect`` — births chained inside a batch,
  then disconnection/reconnection through the born component;
* ``stream_directed_inverse_churn`` — antiparallel directed edges added
  and removed alongside their twins within single batches.

The replay is deterministic (no hypothesis) and runs BOTH backends, so a
regression in either the scalar reference or the vectorized kernel — or
any drift between them — fails against the frozen floats with ``==``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.graph import Graph

DATA_DIR = Path(__file__).parent / "data"
STREAMS = sorted(p.stem for p in DATA_DIR.glob("stream_*.json"))


def load_stream(name):
    with open(DATA_DIR / f"{name}.json") as fh:
        return json.load(fh)


def replay(doc, backend):
    graph = Graph(directed=doc["directed"])
    for vertex in range(doc["vertices"]):
        graph.add_vertex(vertex)
    for u, v in doc["edges"]:
        graph.add_edge(u, v)
    framework = IncrementalBetweenness(graph, backend=backend)
    for batch, expected in zip(doc["batches"], doc["expected_after_batch"]):
        framework.apply_updates(
            [
                EdgeUpdate.addition(u, v)
                if kind == "add"
                else EdgeUpdate.removal(u, v)
                for kind, u, v in batch
            ]
        )
        got_vertex = {str(k): v for k, v in framework.vertex_betweenness().items()}
        got_edge = {
            f"{u},{v}": s for (u, v), s in framework.edge_betweenness().items()
        }
        yield batch, expected, got_vertex, got_edge


def test_corpus_is_present():
    # Guards against the data files being lost in a refactor: the corpus
    # must keep covering all four frozen bug shapes.
    assert len(STREAMS) >= 4, STREAMS


@pytest.mark.parametrize("backend", ["dicts", "arrays"])
@pytest.mark.parametrize("name", STREAMS)
def test_replay_matches_frozen_scores(name, backend):
    doc = load_stream(name)
    for batch, expected, got_vertex, got_edge in replay(doc, backend):
        assert got_vertex == expected["vertex"], (name, backend, batch)
        assert got_edge == expected["edge"], (name, backend, batch)
