"""Adversarial repair streams for the vectorized update-sweep kernel.

The flat (slot-space, numpy-bucketed) repair path promises *bit-identical*
scores and records against the classic dict backend — ``==`` on floats,
never approximate.  This suite attacks that promise with the stream shapes
that historically broke incremental repair implementations:

* multi-level distance drops (a shortcut addition that pulls a whole
  subtree several levels up, and a bridge removal that pushes one down);
* vertex births inside a batch, including chained births where the second
  update hangs off a vertex born by the first;
* disconnections and reconnections, within one batch and across batches;
* duplicate (remove-then-readd) and, on directed graphs, inverse edges in
  one batch;
* the remove-then-readd edge-score resurrection shape (PR 1 regression).

Every deterministic case and every hypothesis-generated stream is checked
after EVERY batch on {undirected, directed} x {in-RAM columns, mmap disk,
buffered disk}, comparing vertex scores, edge scores, and all stored
records.  A differential leg additionally pins the vectorized path against
the scalar slot-space path (``REPRO_VECTOR_REPAIR=0``) and the JIT
dispatcher against its pure-numpy fallback.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.core import jit
from repro.graph import Graph
from repro.storage import DiskBDStore
from repro.storage.buffers import active_segments, shm_available

settings.register_profile(
    "repro-repair-vectorized",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-repair-vectorized")

STORE_KINDS = ("memory", "disk-mmap", "disk-buffered")


def build_graph(n, edges, directed):
    graph = Graph(directed=directed)
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def make_arrays_framework(graph, store_kind, tmp_path):
    """An ``arrays``-backend framework over the requested store kind."""
    if store_kind == "memory":
        return IncrementalBetweenness(graph, backend="arrays")
    store = DiskBDStore(
        graph.vertex_list(),
        path=tmp_path / f"bd-{store_kind}.bin",
        use_mmap=(store_kind == "disk-mmap"),
        directed=graph.directed,
    )
    return IncrementalBetweenness(graph, store=store, backend="arrays")


def assert_streams_bit_identical(arrays, dicts, context):
    """Exact equality of both score mappings and every stored record."""
    va, vd = arrays.vertex_betweenness(), dicts.vertex_betweenness()
    assert va == vd, f"{context}: vertex scores diverge: " + repr(
        {k: (va.get(k), vd.get(k)) for k in set(va) | set(vd) if va.get(k) != vd.get(k)}
    )
    ea, ed = arrays.edge_betweenness(), dicts.edge_betweenness()
    assert ea == ed, f"{context}: edge scores diverge: " + repr(
        {k: (ea.get(k), ed.get(k)) for k in set(ea) | set(ed) if ea.get(k) != ed.get(k)}
    )
    assert set(arrays.store.sources()) == set(dicts.store.sources()), context
    for source in dicts.store.sources():
        flat = arrays.store.get(source)
        record = dicts.store.get(source)
        assert flat.distance == record.distance, f"{context}: distance[{source}]"
        assert flat.sigma == record.sigma, f"{context}: sigma[{source}]"
        assert flat.delta == record.delta, f"{context}: delta[{source}]"


def run_differential(graph, batches, store_kind):
    with tempfile.TemporaryDirectory() as tmp:
        arrays = make_arrays_framework(graph.copy(), store_kind, Path(tmp))
        dicts = IncrementalBetweenness(graph.copy(), backend="dicts")
        assert_streams_bit_identical(arrays, dicts, "bootstrap")
        for i, batch in enumerate(batches):
            arrays.apply_updates(list(batch))
            dicts.apply_updates(list(batch))
            assert_streams_bit_identical(
                arrays, dicts, f"after batch {i} ({batch})"
            )
        arrays.store.close()


add = EdgeUpdate.addition
remove = EdgeUpdate.removal

# name -> (n, edges, batches); every case runs undirected AND directed.
ADVERSARIAL_CASES = {
    # A chord lifts the tail of a long path several levels at once, then
    # the path edge behind it is cut so distances fall right back down.
    "multi_level_drop": (
        7,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)],
        [[add(0, 5)], [remove(4, 5), add(0, 3)], [remove(0, 5)]],
    ),
    # Births inside one batch, chained: 7 is born hanging off 2, then 8 is
    # born hanging off the just-born 7, then the anchor edge is cut.
    "births_in_batch": (
        7,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 6)],
        [[add(2, 7), add(7, 8)], [remove(2, 7)], [add(0, 7), add(8, 2)]],
    ),
    # A bridge is cut (disconnecting one side), re-added in the same batch,
    # then cut again and reconnected through a different vertex next batch.
    "disconnect_reconnect": (
        6,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (1, 5)],
        [[remove(1, 2), add(1, 2)], [remove(1, 2)], [add(0, 4), add(5, 3)]],
    ),
    # The same edge is removed, re-added and removed again within one
    # batch: its score entry must die, resurrect from zero, and die again.
    "duplicate_in_batch": (
        5,
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (3, 4)],
        [[remove(1, 3), add(1, 3), remove(1, 3)], [add(1, 3)]],
    ),
    # Inverse edges in one batch: on a directed graph (u, v) and (v, u) are
    # distinct edges with distinct scores; undirected they collapse to a
    # remove-then-readd of the same edge (also worth hitting).
    "inverse_edges": (
        5,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        [[remove(1, 2), add(2, 1)], [remove(2, 1), add(1, 2), remove(4, 0)]],
    ),
    # Remove-then-readd across batches: the PR 1 regression shape, where a
    # re-added edge's score must restart from zero, not its old value.
    "remove_then_readd": (
        6,
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        [[remove(3, 4)], [add(3, 4)], [remove(0, 1), remove(2, 3)], [add(2, 3)]],
    ),
}


@pytest.mark.parametrize("store_kind", STORE_KINDS)
@pytest.mark.parametrize("directed", [False, True], ids=["undirected", "directed"])
@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
class TestAdversarialStreams:
    def test_bit_identical_after_every_batch(self, case, directed, store_kind):
        n, edges, batches = ADVERSARIAL_CASES[case]
        graph = build_graph(n, edges, directed)
        run_differential(graph, batches, store_kind)


@st.composite
def batched_stream(draw, directed):
    """A random graph plus a batched update script biased toward trouble.

    The script is generated against a shadow copy so every update is valid
    at its point in the stream; the bias re-picks recently removed edges
    (remove-then-readd), attaches brand-new vertices (births), and on
    directed graphs proposes the inverse of existing edges.
    """
    n = draw(st.integers(min_value=2, max_value=7))
    pairs = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and (directed or u < v)
    ]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [e for e, keep in zip(pairs, mask) if keep]
    shadow = build_graph(n, edges, directed)
    next_vertex = n
    removed_recently = []
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        batch = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            choice = draw(st.integers(min_value=0, max_value=4))
            current = shadow.edge_list()
            if choice == 0 and current:  # removal (may disconnect)
                u, v = current[draw(st.integers(0, len(current) - 1))]
                batch.append(remove(u, v))
                shadow.remove_edge(u, v)
                removed_recently.append((u, v))
            elif choice == 1 and removed_recently:  # readd a removed edge
                u, v = removed_recently.pop()
                if not shadow.has_edge(u, v):
                    batch.append(add(u, v))
                    shadow.add_edge(u, v)
            elif choice == 2:  # vertex birth
                verts = shadow.vertex_list()
                u = verts[draw(st.integers(0, len(verts) - 1))]
                batch.append(add(u, next_vertex))
                shadow.add_edge(u, next_vertex)
                next_vertex += 1
            else:  # addition; on directed graphs this includes inverses
                verts = shadow.vertex_list()
                non_edges = [
                    (u, v)
                    for u in verts
                    for v in verts
                    if u != v
                    and (directed or u < v)
                    and not shadow.has_edge(u, v)
                ]
                if not non_edges:
                    continue
                u, v = non_edges[draw(st.integers(0, len(non_edges) - 1))]
                batch.append(add(u, v))
                shadow.add_edge(u, v)
        if batch:
            batches.append(batch)
    return build_graph(n, edges, directed), batches


class TestHypothesisStreams:
    @pytest.mark.parametrize(
        "directed", [False, True], ids=["undirected", "directed"]
    )
    @given(data=st.data())
    def test_memory_store(self, directed, data):
        graph, batches = data.draw(batched_stream(directed))
        run_differential(graph, batches, "memory")

    @pytest.mark.parametrize("store_kind", ["disk-mmap", "disk-buffered"])
    @settings(max_examples=10)
    @given(data=st.data())
    def test_disk_stores(self, store_kind, data):
        directed = data.draw(st.booleans())
        graph, batches = data.draw(batched_stream(directed))
        run_differential(graph, batches, store_kind)


@pytest.mark.parametrize("sweep_allocator", ["heap", "shm"])
@pytest.mark.parametrize("directed", [False, True], ids=["undirected", "directed"])
@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
class TestBufferedCohortSweep:
    """The buffered (non-mmap) disk path's per-batch column-sweep window.

    Without mmap there are no zero-copy column views, so the framework
    opens a *sweep window* per batch: the record area is materialized once
    into allocator buffers (heap or shared-memory), the cohort sweep runs
    in place against them, and dirty slots are written back as whole
    records when the window closes.  Scores and records must stay ``==``
    the mmap path's, and shm windows must release every segment.
    """

    def test_buffered_window_equals_mmap(
        self, case, directed, sweep_allocator, tmp_path
    ):
        if sweep_allocator == "shm" and not shm_available():
            pytest.skip("shared memory unavailable")
        n, edges, batches = ADVERSARIAL_CASES[case]
        mmap_fw = IncrementalBetweenness(
            build_graph(n, edges, directed),
            store=DiskBDStore(
                list(range(n)),
                path=tmp_path / "mmap.bin",
                use_mmap=True,
                directed=directed,
            ),
            backend="arrays",
        )
        buffered_store = DiskBDStore(
            list(range(n)),
            path=tmp_path / "buffered.bin",
            use_mmap=False,
            directed=directed,
            sweep_allocator=sweep_allocator,
        )
        buffered = IncrementalBetweenness(
            build_graph(n, edges, directed), store=buffered_store, backend="arrays"
        )
        # Witness that the window really opens (and closes) every batch —
        # without it the buffered leg silently degrades to per-record I/O.
        windows = {"opened": 0}
        original = buffered_store.begin_column_sweep

        def spy():
            opened = original()
            windows["opened"] += int(opened)
            return opened

        buffered_store.begin_column_sweep = spy
        try:
            for i, batch in enumerate(batches):
                mmap_fw.apply_updates(list(batch))
                buffered.apply_updates(list(batch))
                context = f"{case} batch {i}"
                assert (
                    buffered.vertex_betweenness() == mmap_fw.vertex_betweenness()
                ), context
                assert (
                    buffered.edge_betweenness() == mmap_fw.edge_betweenness()
                ), context
                for source in mmap_fw.store.sources():
                    ours = buffered_store.get(source)
                    theirs = mmap_fw.store.get(source)
                    assert ours.distance == theirs.distance, context
                    assert ours.sigma == theirs.sigma, context
                    assert ours.delta == theirs.delta, context
            assert windows["opened"] == len(batches)
        finally:
            buffered_store.close()
            mmap_fw.store.close()
        if sweep_allocator == "shm":
            assert active_segments() == []


class TestScalarVectorDifferential:
    """The flat path against the scalar slot-space path, same backend."""

    @pytest.mark.parametrize(
        "directed", [False, True], ids=["undirected", "directed"]
    )
    @pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
    def test_vector_toggle(self, case, directed, monkeypatch):
        n, edges, batches = ADVERSARIAL_CASES[case]
        vector = IncrementalBetweenness(
            build_graph(n, edges, directed), backend="arrays"
        )
        monkeypatch.setenv("REPRO_VECTOR_REPAIR", "0")
        scalar = IncrementalBetweenness(
            build_graph(n, edges, directed), backend="arrays"
        )
        assert not scalar._kernel._vector_enabled
        assert vector._kernel._vector_enabled
        for i, batch in enumerate(batches):
            vector.apply_updates(list(batch))
            scalar.apply_updates(list(batch))
            assert vector.vertex_betweenness() == scalar.vertex_betweenness()
            assert vector.edge_betweenness() == scalar.edge_betweenness()


class TestCohortSoloDifferential:
    """The cohort pair-space sweep against the per-source solo sweep.

    ``REPRO_COHORT_REPAIR=0`` forces the batch sweep down the solo
    (one-source-at-a-time) flat path; the cohort path promises the same
    bit-exact scores and records, so both frameworks must stay ``==``
    after every batch.
    """

    @pytest.mark.parametrize(
        "directed", [False, True], ids=["undirected", "directed"]
    )
    @pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
    def test_cohort_toggle(self, case, directed, monkeypatch):
        n, edges, batches = ADVERSARIAL_CASES[case]
        cohort = IncrementalBetweenness(
            build_graph(n, edges, directed), backend="arrays"
        )
        solo = IncrementalBetweenness(
            build_graph(n, edges, directed), backend="arrays"
        )
        # Witness that the two frameworks really take different paths: only
        # the cohort framework may ever enter the pair-space sweep.
        calls = {"cohort": 0, "solo": 0}
        kernel_cls = type(cohort._kernel)
        original = kernel_cls.repair_update_cohort

        def spy(kernel, *args, **kwargs):
            calls["cohort" if kernel is cohort._kernel else "solo"] += 1
            return original(kernel, *args, **kwargs)

        monkeypatch.setattr(kernel_cls, "repair_update_cohort", spy)
        for batch in batches:
            monkeypatch.delenv("REPRO_COHORT_REPAIR", raising=False)
            cohort.apply_updates(list(batch))
            monkeypatch.setenv("REPRO_COHORT_REPAIR", "0")
            solo.apply_updates(list(batch))
            assert cohort.vertex_betweenness() == solo.vertex_betweenness()
            assert cohort.edge_betweenness() == solo.edge_betweenness()
            for source in solo.store.sources():
                a, b = cohort.store.get(source), solo.store.get(source)
                assert a.distance == b.distance
                assert a.sigma == b.sigma
                assert a.delta == b.delta
        assert calls["cohort"] > 0
        assert calls["solo"] == 0

    @given(data=st.data())
    def test_cohort_toggle_hypothesis(self, data):
        directed = data.draw(st.booleans())
        graph, batches = data.draw(batched_stream(directed))
        cohort = IncrementalBetweenness(graph.copy(), backend="arrays")
        solo = IncrementalBetweenness(graph.copy(), backend="arrays")
        try:
            for batch in batches:
                os.environ.pop("REPRO_COHORT_REPAIR", None)
                cohort.apply_updates(list(batch))
                os.environ["REPRO_COHORT_REPAIR"] = "0"
                solo.apply_updates(list(batch))
                assert cohort.vertex_betweenness() == solo.vertex_betweenness()
                assert cohort.edge_betweenness() == solo.edge_betweenness()
        finally:
            os.environ.pop("REPRO_COHORT_REPAIR", None)


class TestJITContract:
    """The JIT is a speed switch, never a semantics switch."""

    def test_toggle_reports_effective_state(self):
        previous = jit.jit_enabled()
        try:
            # Enabling is a request: without numba it must report False.
            assert jit.set_jit_enabled(True) == jit.jit_available()
            assert jit.set_jit_enabled(False) is False
        finally:
            jit.set_jit_enabled(previous)

    def test_scatter_add_ordered_duplicates(self):
        acc = np.zeros(4)
        idx = np.array([1, 1, 3, 1, 0], dtype=np.int64)
        vals = np.array([0.1, 0.2, 1.0, 0.4, 2.0])
        jit.scatter_add(acc, idx, vals)
        expected = np.zeros(4)
        for i, v in zip(idx.tolist(), vals.tolist()):
            expected[i] += v
        assert acc.tolist() == expected.tolist()

    @pytest.mark.parametrize("enabled", [False, True])
    def test_stream_identical_across_jit_modes(self, enabled):
        if enabled and not jit.jit_available():
            pytest.skip("numba not installed; only the fallback leg runs")
        n, edges, batches = ADVERSARIAL_CASES["multi_level_drop"]
        previous = jit.jit_enabled()
        try:
            jit.set_jit_enabled(enabled)
            arrays = IncrementalBetweenness(
                build_graph(n, edges, False), backend="arrays"
            )
            dicts = IncrementalBetweenness(
                build_graph(n, edges, False), backend="dicts"
            )
            for batch in batches:
                arrays.apply_updates(list(batch))
                dicts.apply_updates(list(batch))
            assert arrays.vertex_betweenness() == dicts.vertex_betweenness()
            assert arrays.edge_betweenness() == dicts.edge_betweenness()
        finally:
            jit.set_jit_enabled(previous)
