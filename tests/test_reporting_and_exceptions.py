"""Tests for JSON experiment reports and the exception hierarchy."""

import pytest

from repro.analysis.reporting import ExperimentReport, compare_payload_keys, load_report
from repro.exceptions import (
    ConfigurationError,
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    PartitionError,
    ReproError,
    SelfLoopError,
    StorageError,
    StoreClosedError,
    StoreCorruptedError,
    UpdateError,
    VertexNotFoundError,
)
from repro.utils.stats import summarize


class TestExperimentReport:
    def test_round_trip(self, tmp_path):
        report = ExperimentReport(
            experiment="table4", parameters={"edges": 10, "dataset": "facebook"}
        )
        report.add("summary", summarize([1.0, 2.0, 3.0]))
        report.add("speedups", (1.0, 2.0, 3.0))
        path = report.save(tmp_path / "nested" / "table4.json")
        loaded = load_report(path)
        assert loaded.experiment == "table4"
        assert loaded.parameters["dataset"] == "facebook"
        assert loaded.payload["summary"]["median"] == 2.0
        assert loaded.payload["speedups"] == [1.0, 2.0, 3.0]

    def test_dataclass_and_exotic_values_are_serialisable(self, tmp_path):
        report = ExperimentReport(experiment="x")
        report.add("mapping", {("a", "b"): 1.0})
        report.add("set", {3, 1, 2})
        path = report.save(tmp_path / "x.json")
        loaded = load_report(path)
        assert "('a', 'b')" in loaded.payload["mapping"]
        assert sorted(loaded.payload["set"]) == [1, 2, 3]

    def test_malformed_report_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"parameters": {}}')
        with pytest.raises(ConfigurationError):
            load_report(bad)

    def test_compare_payload_keys(self):
        before = ExperimentReport(experiment="e", payload={"a": 1, "b": 2, "c": 3})
        after = ExperimentReport(experiment="e", payload={"b": 2, "c": 30, "d": 4})
        verdicts = compare_payload_keys(before, after)
        assert verdicts == {
            "a": "removed",
            "b": "unchanged",
            "c": "changed",
            "d": "added",
        }

    def test_compare_different_experiments_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_payload_keys(
                ExperimentReport(experiment="a"), ExperimentReport(experiment="b")
            )

    def test_version_metadata_present(self):
        report = ExperimentReport(experiment="meta")
        data = report.to_dict()
        assert data["library_version"]
        assert data["python_version"]


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            GraphError,
            VertexNotFoundError,
            EdgeNotFoundError,
            EdgeExistsError,
            SelfLoopError,
            StorageError,
            StoreClosedError,
            StoreCorruptedError,
            PartitionError,
            UpdateError,
            ConfigurationError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(VertexNotFoundError, KeyError)
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_value_style_errors_are_value_errors(self):
        assert issubclass(EdgeExistsError, ValueError)
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(UpdateError, ValueError)

    def test_messages_mention_the_offending_elements(self):
        assert "42" in str(VertexNotFoundError(42))
        assert "'a'" in str(EdgeExistsError("a", "b"))
        assert "7" in str(SelfLoopError(7))
