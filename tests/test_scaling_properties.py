"""Property tests of the online-capacity model (Section 5.3).

``required_workers`` must honour its own definition of "online": the
returned worker count's *actual* ``update_time`` (which uses the discrete
``ceil(n / p)`` per-worker share) must be strictly below the inter-arrival
time, and no smaller worker count may satisfy that.  The continuous model
``tS * n / (tI - tM)`` alone does not guarantee this — it can land exactly
on ``tU == tI`` — which is the regression pinned below.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.parallel.scaling import OnlineCapacityModel, required_workers

settings.register_profile(
    "repro-scaling",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-scaling")


@st.composite
def model_and_interarrival(draw):
    """A random capacity model plus a feasible inter-arrival time."""
    time_per_source = draw(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False, allow_infinity=False)
    )
    num_sources = draw(st.integers(min_value=1, max_value=100_000))
    merge_time = draw(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
    )
    model = OnlineCapacityModel(
        time_per_source=time_per_source,
        num_sources=num_sources,
        merge_time=merge_time,
    )
    # Feasibility demands tI > tS + tM; scale up from the serial floor.
    factor = draw(
        st.floats(min_value=1.0001, max_value=1000.0, allow_nan=False)
    )
    interarrival = (time_per_source + merge_time) * factor
    return model, interarrival


class TestRequiredWorkersIsOnline:
    @given(model_and_interarrival())
    def test_returned_count_is_online(self, case):
        model, interarrival = case
        workers = model.required_workers(interarrival)
        assert workers >= 1
        assert model.is_online(workers, interarrival), (
            f"required_workers returned p={workers} but "
            f"update_time(p)={model.update_time(workers)} >= tI={interarrival}"
        )

    @given(model_and_interarrival())
    def test_returned_count_is_minimal(self, case):
        model, interarrival = case
        workers = model.required_workers(interarrival)
        if workers > 1:
            assert not model.is_online(workers - 1, interarrival), (
                f"p={workers} is not minimal: p-1={workers - 1} already has "
                f"update_time={model.update_time(workers - 1)} < tI={interarrival}"
            )

    def test_regression_continuous_solution_lands_on_equality(self):
        # tS=0.01, n=100, tM=0, tI=0.5: the continuous model solves to p=2,
        # but update_time(2) = 0.01 * 50 = 0.5 == tI fails the strict check.
        model = OnlineCapacityModel(
            time_per_source=0.01, num_sources=100, merge_time=0.0
        )
        workers = model.required_workers(0.5)
        assert model.update_time(2) == 0.5  # the old answer was not online
        assert workers == 3
        assert model.is_online(workers, 0.5)
        assert not model.is_online(workers - 1, 0.5)

    def test_ceiling_share_forces_extra_worker(self):
        # n=10, tS=0.1: continuous p0 = 1/(tI) ... with tI=0.35 the
        # continuous solution is ceil(1/0.35)=3, but ceil(10/3)=4 sources
        # per worker gives tU=0.4 >= tI; only p=4 (3 sources, tU=0.3) works.
        model = OnlineCapacityModel(
            time_per_source=0.1, num_sources=10, merge_time=0.0
        )
        workers = model.required_workers(0.35)
        assert workers == 4
        assert model.update_time(3) >= 0.35
        assert model.update_time(4) < 0.35

    def test_infeasible_interarrival_raises(self):
        model = OnlineCapacityModel(
            time_per_source=0.2, num_sources=10, merge_time=0.1
        )
        with pytest.raises(ConfigurationError):
            model.required_workers(0.3)  # tI == tS + tM: unreachable even at p=n

    def test_convenience_wrapper_agrees(self):
        model = OnlineCapacityModel(
            time_per_source=0.01, num_sources=100, merge_time=0.0
        )
        assert required_workers(0.01, 100, 0.5) == model.required_workers(0.5)
