"""FastAPI transport leg — runs only with the ``repro[service]`` extra.

The transport-neutral behaviour (validation, auth, error envelopes, SSE
framing) is covered socket-free in test_service_registry.py and over the
stdlib server in test_service_http.py; this module proves the *FastAPI*
adapter wires the same ROUTES table to the same wire behaviour.  Skipped
cleanly when fastapi (or httpx, which TestClient needs) is absent.
"""

import json
import threading
import time

import pytest

fastapi = pytest.importorskip("fastapi")
pytest.importorskip("httpx")

from fastapi.testclient import TestClient  # noqa: E402

from repro.algorithms import brandes_betweenness  # noqa: E402
from repro.graph import Graph  # noqa: E402
from repro.service import ServiceSettings, create_app  # noqa: E402

AUTH = {"X-API-Key": "secret"}
PATH_EDGES = [[0, 1], [1, 2], [2, 3], [3, 4]]


@pytest.fixture()
def client(tmp_path):
    settings = ServiceSettings(
        root=tmp_path / "svc", api_key="secret", keepalive_seconds=0.2
    )
    app = create_app(settings)
    with TestClient(app) as test_client:
        yield test_client


def _create(client, name="demo", **kwargs):
    payload = {
        "name": name,
        "graph": {"edges": PATH_EDGES},
        "config": kwargs.pop("config", {}),
    }
    payload.update(kwargs)
    response = client.post("/sessions", json=payload, headers=AUTH)
    assert response.status_code == 201, response.text
    return response.json()


class TestParityWithCore:
    def test_healthz_open_sessions_authenticated(self, client):
        assert client.get("/healthz").status_code == 200
        response = client.get("/sessions")
        assert response.status_code == 401
        assert response.json()["error"]["code"] == "authentication_failed"
        assert client.get("/sessions", headers=AUTH).status_code == 200

    def test_lifecycle_and_exact_scores(self, client):
        info = _create(client)
        assert info["num_edges"] == 4
        response = client.post(
            "/sessions/demo/updates",
            json={"updates": [["add", 0, 4], ["add", 1, 3]]},
            headers=AUTH,
        )
        assert response.status_code == 200
        assert response.json()["applied"] == 2

        oracle = Graph()
        for u, v in PATH_EDGES + [[0, 4], [1, 3]]:
            oracle.add_edge(u, v)
        expected = brandes_betweenness(oracle).vertex_scores
        scores = client.get("/sessions/demo/scores", headers=AUTH).json()
        assert dict(map(tuple, scores["scores"])) == expected

        response = client.delete("/sessions/demo?purge=true", headers=AUTH)
        assert response.status_code == 200
        assert (
            client.get("/sessions/demo", headers=AUTH).status_code == 404
        )

    def test_structured_validation_errors(self, client):
        response = client.post(
            "/sessions",
            json={"name": "../evil", "graph": {}},
            headers=AUTH,
        )
        assert response.status_code == 422
        assert response.json()["error"]["code"] == "validation_failed"

        response = client.post(
            "/sessions",
            content=b"{not json",
            headers={**AUTH, "content-type": "application/json"},
        )
        assert response.status_code == 400
        assert response.json()["error"]["code"] == "invalid_json"

    def test_update_conflict_is_a_409(self, client):
        _create(client)
        response = client.post(
            "/sessions/demo/updates",
            json={"updates": [["add", 0, 1]]},  # duplicate edge
            headers=AUTH,
        )
        assert response.status_code == 409
        assert response.json()["error"]["code"] == "update_rejected"

    def test_sse_stream_delivers_batch_frames(self, client):
        _create(client)

        def post_later():
            time.sleep(0.3)
            client.post(
                "/sessions/demo/updates",
                json={"updates": [["add", 0, 4]]},
                headers=AUTH,
            )

        poster = threading.Thread(target=post_later)
        poster.start()
        frames = []
        with client.stream(
            "GET", "/sessions/demo/events", headers=AUTH
        ) as response:
            assert response.status_code == 200
            assert response.headers["content-type"].startswith(
                "text/event-stream"
            )
            for line in response.iter_lines():
                if line.startswith("data:"):
                    frames.append(json.loads(line[5:]))
                    if len(frames) >= 2:
                        break
        poster.join()
        assert [f["type"] for f in frames] == [
            "batch_applied",
            "checkpoint_written",
        ]
        assert frames[0]["updates"] == [{"kind": "add", "u": 0, "v": 4}]
