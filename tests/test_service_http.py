"""End-to-end HTTP/SSE tests over the dependency-free asyncio transport.

Each test boots a real :class:`ServiceServer` on an ephemeral port and
drives it with the stdlib :class:`ServiceClient` — the exact wire a
FastAPI deployment serves, minus the ASGI layer (the routing table,
validation, auth and SSE framing are shared; see test_service_fastapi.py
for the transport-specific leg).
"""

import asyncio
import json

import pytest

from repro.algorithms import brandes_betweenness
from repro.graph import Graph
from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    ServiceSettings,
)

PATH_EDGES = [[0, 1], [1, 2], [2, 3], [3, 4]]


def run(coro):
    return asyncio.run(coro)


async def _boot(tmp_path, **overrides):
    overrides.setdefault("api_key", "secret")
    server = ServiceServer(ServiceSettings(root=tmp_path / "svc", **overrides))
    port = await server.start(port=0)
    client = ServiceClient("127.0.0.1", port, api_key=overrides["api_key"])
    return server, client, port


def oracle_scores(extra_edges=()):
    graph = Graph()
    for u, v in PATH_EDGES:
        graph.add_edge(u, v)
    for u, v in extra_edges:
        graph.add_edge(u, v)
    return brandes_betweenness(graph).vertex_scores


class TestAuth:
    def test_healthz_is_open_everything_else_is_not(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                async with ServiceClient("127.0.0.1", port) as anon:
                    status, payload = await anon.get("/healthz")
                    assert status == 200 and payload["status"] == "ok"
                    status, payload = await anon.get("/sessions")
                    assert status == 401
                    assert payload["error"]["code"] == "authentication_failed"
                async with ServiceClient(
                    "127.0.0.1", port, api_key="wrong"
                ) as bad:
                    status, _ = await bad.get("/sessions")
                    assert status == 401
                status, _ = await client.get("/sessions")
                assert status == 200
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_bearer_token_accepted(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    b"GET /sessions HTTP/1.1\r\n"
                    b"host: t\r\n"
                    b"authorization: Bearer secret\r\n"
                    b"content-length: 0\r\n\r\n"
                )
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                assert b" 200 " in status_line
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_no_key_configured_serves_openly(self, tmp_path):
        async def scenario():
            server = ServiceServer(
                ServiceSettings(root=tmp_path / "svc", api_key=None)
            )
            port = await server.start(port=0)
            try:
                async with ServiceClient("127.0.0.1", port) as anon:
                    status, _ = await anon.get("/sessions")
                    assert status == 200
            finally:
                await server.stop()

        run(scenario())


class TestErrorSurface:
    def test_structured_4xx_never_a_stack_trace(self, tmp_path):
        async def scenario():
            server, client, _ = await _boot(tmp_path)
            try:
                cases = [
                    ("GET", "/sessions/ghost", None, 404, "session_not_found"),
                    ("GET", "/nope", None, 404, "not_found"),
                    (
                        "POST",
                        "/sessions",
                        {"name": "../evil", "graph": {}},
                        422,
                        "validation_failed",
                    ),
                    (
                        "POST",
                        "/sessions",
                        {"name": "x", "graph": {"edges": [[0]]}},
                        422,
                        "validation_failed",
                    ),
                    (
                        "POST",
                        "/sessions",
                        {
                            "name": "x",
                            "graph": {},
                            "config": {"store": "disk:///etc/passwd"},
                        },
                        422,
                        "validation_failed",
                    ),
                ]
                for method, path, body, want_status, want_code in cases:
                    status, payload = await client.request(
                        method, path, body=body
                    )
                    assert status == want_status, (path, payload)
                    assert payload["error"]["code"] == want_code
                    assert "message" in payload["error"]
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_invalid_json_body_is_a_400(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                body = b"{not json"
                writer.write(
                    b"POST /sessions HTTP/1.1\r\n"
                    b"host: t\r\nx-api-key: secret\r\n"
                    b"content-type: application/json\r\n"
                    + f"content-length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                status_line = await reader.readline()
                assert b" 400 " in status_line
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    k, _, v = line.decode().partition(":")
                    headers[k.strip().lower()] = v.strip()
                raw = await reader.readexactly(
                    int(headers["content-length"])
                )
                assert json.loads(raw)["error"]["code"] == "invalid_json"
                writer.close()
                await writer.wait_closed()
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_duplicate_session_is_a_409(self, tmp_path):
        async def scenario():
            server, client, _ = await _boot(tmp_path)
            try:
                await client.create_session("demo", edges=PATH_EDGES)
                with pytest.raises(ServiceClientError) as excinfo:
                    await client.create_session("demo", edges=PATH_EDGES)
                assert excinfo.value.status == 409
                assert excinfo.value.code == "session_exists"
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_rejected_update_is_a_409_and_atomic(self, tmp_path):
        async def scenario():
            server, client, _ = await _boot(tmp_path)
            try:
                await client.create_session("demo", edges=PATH_EDGES)
                with pytest.raises(ServiceClientError) as excinfo:
                    await client.post_updates(
                        "demo", [("add", 0, 4), ("add", 0, 1)]
                    )
                assert excinfo.value.status == 409
                assert excinfo.value.code == "update_rejected"
                payload = await client.scores("demo")
                assert dict(
                    (k, v) for k, v in payload["scores"]
                ) == oracle_scores()
            finally:
                await client.close()
                await server.stop()

        run(scenario())


class TestLifecycle:
    def test_full_crud_with_exact_scores(self, tmp_path):
        async def scenario():
            server, client, _ = await _boot(tmp_path)
            try:
                info = await client.create_session(
                    "demo",
                    edges=PATH_EDGES,
                    config={"backend": "arrays"},
                )
                assert info["name"] == "demo"
                assert info["num_edges"] == 4

                summary = await client.post_updates(
                    "demo", [("add", 0, 4), ("add", 1, 3)]
                )
                assert summary["applied"] == 2
                assert summary["durable"] is True

                expected = oracle_scores([(0, 4), (1, 3)])
                payload = await client.scores("demo")
                assert dict(payload["scores"]) == expected

                top = await client.top_k("demo", k=2)
                ranked = sorted(
                    expected.items(), key=lambda kv: (-kv[1], repr(kv[0]))
                )[:2]
                assert [
                    (t["item"], t["score"]) for t in top["top"]
                ] == ranked

                listing = await client.expect("GET", "/sessions")
                assert [s["name"] for s in listing["sessions"]] == ["demo"]

                result = await client.delete_session("demo", purge=True)
                assert result["purged"] is True
                status, _ = await client.get("/sessions/demo")
                assert status == 404
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_scores_vertex_filter_and_edge_scores(self, tmp_path):
        async def scenario():
            server, client, _ = await _boot(tmp_path)
            try:
                await client.create_session("demo", edges=[["a", "b"], ["b", "c"]])
                payload = await client.expect(
                    "GET",
                    "/sessions/demo/scores",
                    query={"vertices": "b"},
                )
                assert dict(payload["scores"]) == {"b": 2.0}
                status, body = await client.get(
                    "/sessions/demo/scores", query={"vertices": "b,z"}
                )
                assert status == 422  # unknown vertices are an error, not a skip
                assert body["error"]["details"] == {"unknown": ["z"]}
                payload = await client.scores("demo", edges=True)
                assert len(payload["scores"]) == 2
                assert payload["edges"] is True
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_two_tenants_do_not_interfere(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                await client.create_session("a", edges=PATH_EDGES)
                await client.create_session(
                    "b", edges=[[0, 1], [1, 2], [2, 0]]
                )

                async def hammer(name, updates):
                    async with ServiceClient(
                        "127.0.0.1", port, api_key="secret"
                    ) as worker:
                        for batch in updates:
                            await worker.post_updates(name, [batch])

                await asyncio.gather(
                    hammer("a", [("add", 0, 4), ("add", 1, 3)]),
                    hammer("b", [("add", 0, 3), ("add", 3, 1)]),
                )
                a = await client.scores("a")
                assert dict(a["scores"]) == oracle_scores([(0, 4), (1, 3)])
                b_graph = Graph()
                for u, v in [(0, 1), (1, 2), (2, 0), (0, 3), (3, 1)]:
                    b_graph.add_edge(u, v)
                b = await client.scores("b")
                assert (
                    dict(b["scores"])
                    == brandes_betweenness(b_graph).vertex_scores
                )
            finally:
                await client.close()
                await server.stop()

        run(scenario())


class TestEventStream:
    def test_sse_frames_for_updates_and_checkpoints(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                await client.create_session("demo", edges=PATH_EDGES)
                subscriber = ServiceClient(
                    "127.0.0.1", port, api_key="secret"
                )
                frames = []

                async def consume():
                    async for frame in subscriber.events(
                        "demo", max_frames=4
                    ):
                        frames.append(frame)

                task = asyncio.create_task(consume())
                await asyncio.sleep(0.05)
                await client.post_updates("demo", [("add", 0, 4)])
                await client.post_updates("demo", [("add", 1, 3)])
                await asyncio.wait_for(task, 10)
                await subscriber.close()
                assert [f["type"] for f in frames] == [
                    "batch_applied",
                    "checkpoint_written",
                    "batch_applied",
                    "checkpoint_written",
                ]
                assert frames[0]["updates"] == [
                    {"kind": "add", "u": 0, "v": 4}
                ]
                assert frames[0]["batch_index"] == 0
                assert frames[2]["batch_index"] == 1
                assert frames[1]["path"].endswith("checkpoint.bin")
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_sse_for_missing_session_is_a_404(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                subscriber = ServiceClient(
                    "127.0.0.1", port, api_key="secret"
                )
                with pytest.raises(ServiceClientError) as excinfo:
                    async for _ in subscriber.events("ghost"):
                        pass
                assert excinfo.value.status == 404
                await subscriber.close()
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_open_stream_ends_with_session_closed_frame(self, tmp_path):
        async def scenario():
            server, client, port = await _boot(tmp_path)
            try:
                await client.create_session("demo", edges=PATH_EDGES)
                subscriber = ServiceClient(
                    "127.0.0.1", port, api_key="secret"
                )
                frames = []

                async def consume():
                    async for frame in subscriber.events("demo"):
                        frames.append(frame)

                task = asyncio.create_task(consume())
                await asyncio.sleep(0.05)
                await client.delete_session("demo")
                await asyncio.wait_for(task, 10)
                await subscriber.close()
                assert frames[-1]["type"] == "session_closed"
                # The final close checkpoint precedes it.
                assert "checkpoint_written" in [f["type"] for f in frames]
            finally:
                await client.close()
                await server.stop()

        run(scenario())


class TestRestartOverHTTP:
    def test_orderly_restart_restores_scores_exactly(self, tmp_path):
        async def first_life():
            server, client, _ = await _boot(tmp_path)
            await client.create_session(
                "demo", edges=PATH_EDGES, config={"store": "disk://"}
            )
            await client.post_updates("demo", [("add", 0, 4)])
            payload = await client.scores("demo")
            await client.close()
            await server.stop()
            return dict(payload["scores"])

        async def second_life():
            server, client, _ = await _boot(tmp_path)
            payload = await client.scores("demo")
            await client.close()
            await server.stop()
            return dict(payload["scores"])

        before = run(first_life())
        after = run(second_life())
        assert after == before == oracle_scores([(0, 4)])
