"""Transport-neutral service core: payload validation, server-owned paths,
the event bridge, the single-writer worker and restart recovery.

No sockets anywhere in this file — the registry is driven directly, which
is exactly why the service core is split from its HTTP transports.
"""

import asyncio
import json

import pytest

from repro.algorithms import brandes_betweenness
from repro.api import open_session
from repro.core import EdgeUpdate
from repro.graph import Graph
from repro.service import (
    ClientStream,
    EventBridge,
    ServiceSettings,
    SessionClosed,
    SessionExists,
    SessionNotFound,
    SessionRegistry,
    SessionUnavailable,
    UpdateRejected,
    ValidationFailed,
    encode_event,
)
from repro.service.registry import parse_graph_payload, parse_updates_payload


def run(coro):
    return asyncio.run(coro)


def settings_for(tmp_path, **overrides):
    return ServiceSettings(root=tmp_path / "svc", **overrides)


PATH_GRAPH = {"edges": [[0, 1], [1, 2], [2, 3], [3, 4]]}


async def _started(tmp_path, **overrides):
    registry = SessionRegistry(settings_for(tmp_path, **overrides))
    await registry.startup()
    return registry


class TestGraphPayload:
    def test_round_trip(self):
        graph = parse_graph_payload(
            {"edges": [[0, 1], ["a", "b"]], "vertices": [9], "directed": True}
        )
        assert graph.directed
        assert graph.num_vertices == 5  # 0,1,a,b + isolated 9
        assert graph.has_edge("a", "b")

    @pytest.mark.parametrize(
        "payload, needle",
        [
            ([1, 2], "must be an object"),
            ({"edges": "nope"}, "list of [u, v] pairs"),
            ({"edges": [[0]]}, "edges[0]"),
            ({"edges": [[0, 1.5]]}, "strings or integers"),
            ({"edges": [[0, 0]]}, "edges[0]"),  # self loop → GraphError
            ({"edges": [], "directed": "yes"}, "boolean"),
            ({"nodes": []}, "unknown graph fields"),
            ({"vertices": [True]}, "strings or integers"),
        ],
    )
    def test_rejections(self, payload, needle):
        with pytest.raises(ValidationFailed) as excinfo:
            parse_graph_payload(payload)
        assert needle in str(excinfo.value)


class TestUpdatesPayload:
    def test_both_shapes_decode(self):
        updates = parse_updates_payload(
            {"updates": [["add", 0, 5], {"kind": "remove", "u": "x", "v": "y"}]}
        )
        assert [u.is_addition for u in updates] == [True, False]
        assert (updates[1].u, updates[1].v) == ("x", "y")

    @pytest.mark.parametrize(
        "payload, needle",
        [
            ("nope", "JSON object"),
            ({}, "missing required field 'updates'"),
            ({"updates": []}, "at least one update"),
            ({"updates": [["add", 0]]}, "updates[0]"),
            ({"updates": [["toggle", 0, 1]]}, "'add' or 'remove'"),
            ({"updates": [{"kind": "add", "u": 0}]}, "strings or integers"),
        ],
    )
    def test_rejections(self, payload, needle):
        with pytest.raises(ValidationFailed) as excinfo:
            parse_updates_payload(payload)
        assert needle in str(excinfo.value)


class TestEffectiveConfig:
    """Clients post store *schemes*; the registry owns every path."""

    def _effective(self, tmp_path, config, directed=False):
        registry = SessionRegistry(settings_for(tmp_path))
        graph = Graph(directed=directed)
        graph.add_edge(0, 1)
        directory = registry.settings.sessions_root / "s"
        return registry._effective_config(config, graph, directory), directory

    def test_serial_default_gets_a_checkpoint_path(self, tmp_path):
        config, directory = self._effective(tmp_path, {})
        assert config.executor == "serial"
        assert config.checkpoint_path == str(directory / "checkpoint.bin")

    def test_disk_scheme_rewritten_under_session_dir(self, tmp_path):
        config, directory = self._effective(
            tmp_path, {"store": "disk://?mmap=1", "backend": "arrays"}
        )
        assert config.store == f"disk://{directory / 'store.bin'}?mmap=1"

    def test_shard_scheme_rewritten_with_cadence(self, tmp_path):
        config, directory = self._effective(
            tmp_path,
            {"store": "shard://?shards=3", "executor": "shard"},
        )
        assert config.store.startswith(f"shard://{directory / 'shards'}?")
        assert "shards=3" in config.store
        assert "checkpoint_every=1" in config.store  # service default cadence

    @pytest.mark.parametrize(
        "config, needle",
        [
            ({"store": "disk:///etc/passwd"}, "must not name a path"),
            ({"store": "shard:///tmp/x?shards=2"}, "must not name a path"),
            ({"store": "ftp://"}, "not servable"),
            ({"store": 7}, "URI string"),
            ({"executor": "process"}, "'serial' or 'shard'"),
            ({"executor": "mapreduce"}, "'serial' or 'shard'"),
            ({"checkpoint_path": "/tmp/x"}, "server-owned"),
            ({"checkpoint_every": 5}, "server-owned"),
            ({"seed_store_path": "/tmp/x"}, "server-owned"),
            ({"backend": "quantum"}, "backend"),
            ({"directed": True}, "contradicts"),
        ],
    )
    def test_rejections(self, tmp_path, config, needle):
        with pytest.raises(ValidationFailed) as excinfo:
            self._effective(tmp_path, config)
        assert needle in str(excinfo.value)


class TestClientStream:
    def test_drop_oldest_and_lagged_marker(self):
        async def scenario():
            stream = ClientStream(asyncio.get_running_loop(), maxsize=3)
            for i in range(7):  # 4 overflowed
                stream.push({"type": "n", "i": i})
            stream.close()
            return [frame async for frame in stream.frames()]

        frames = run(scenario())
        assert frames[0] == {"type": "lagged", "dropped": 4}
        assert [f["i"] for f in frames[1:]] == [4, 5, 6]  # newest survive

    def test_keepalive_yields_none(self):
        async def scenario():
            stream = ClientStream(asyncio.get_running_loop(), maxsize=4)
            it = stream.frames(keepalive=0.01)
            first = await it.__anext__()
            stream.push({"type": "n"})
            second = await it.__anext__()
            stream.close()
            return first, second

        first, second = run(scenario())
        assert first is None
        assert second == {"type": "n"}

    def test_push_after_close_is_dropped(self):
        async def scenario():
            stream = ClientStream(asyncio.get_running_loop(), maxsize=4)
            stream.close()
            stream.push({"type": "n"})
            return [frame async for frame in stream.frames()]

        assert run(scenario()) == []


class TestEventBridge:
    def test_fan_out_and_broken_client_isolation(self, path5):
        async def scenario():
            loop = asyncio.get_running_loop()
            bridge = EventBridge(loop, queue_size=16)
            healthy = bridge.open_stream()
            broken = bridge.open_stream()
            broken.push = lambda frame: (_ for _ in ()).throw(RuntimeError())
            session = open_session(path5)
            session.subscribe(bridge)
            session.apply_batch([EdgeUpdate.addition(0, 2)])
            session.close()
            assert bridge.num_clients == 2
            bridge.close()
            assert bridge.num_clients == 0
            return [frame async for frame in healthy.frames()]

        frames = run(scenario())
        assert [f["type"] for f in frames] == ["batch_applied", "session_closed"]
        batch = frames[0]
        assert batch["num_updates"] == 1
        assert batch["updates"] == [{"kind": "add", "u": 0, "v": 2}]

    def test_encode_event_skips_unknown(self):
        assert encode_event(object()) is None


class TestRegistryLifecycle:
    def test_create_read_update_delete(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            info = await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            assert info["name"] == "demo"
            assert info["executor"] == "serial"
            assert [s["name"] for s in registry.list_sessions()] == ["demo"]
            managed = registry.get("demo")
            summary = await managed.apply_updates(
                parse_updates_payload({"updates": [["add", 0, 4]]})
            )
            assert summary["applied"] == 1
            assert summary["batch_index"] == 0
            assert summary["durable"] is True  # cadence 1
            scores = await managed.read(managed.session.vertex_betweenness)
            oracle = Graph()
            for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]:
                oracle.add_edge(u, v)
            assert scores == brandes_betweenness(oracle).vertex_scores
            result = await registry.delete("demo")
            assert result == {"name": "demo", "closed": True, "purged": False}
            with pytest.raises(SessionClosed):
                registry.get("demo")
            await registry.close_all()

        run(scenario())

    def test_duplicate_names_and_limits(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path, max_sessions=2)
            payload = {"name": "a", "graph": PATH_GRAPH, "config": {}}
            await registry.create(payload)
            with pytest.raises(SessionExists):
                await registry.create(payload)
            await registry.create({**payload, "name": "b"})
            with pytest.raises(ValidationFailed) as excinfo:
                await registry.create({**payload, "name": "c"})
            assert "session limit" in str(excinfo.value)
            await registry.close_all()

        run(scenario())

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "a/b", "../up", "x" * 65, "sp ace"]
    )
    def test_bad_names_rejected(self, tmp_path, name):
        async def scenario():
            registry = await _started(tmp_path)
            with pytest.raises(ValidationFailed):
                await registry.create(
                    {"name": name, "graph": PATH_GRAPH, "config": {}}
                )
            await registry.close_all()

        run(scenario())

    def test_unknown_session_field_rejected(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            with pytest.raises(ValidationFailed) as excinfo:
                await registry.create(
                    {"name": "a", "graph": PATH_GRAPH, "configs": {}}
                )
            assert "unknown session fields" in str(excinfo.value)
            await registry.close_all()

        run(scenario())

    def test_update_rejection_is_atomic(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            managed = registry.get("demo")
            before = await managed.read(managed.session.vertex_betweenness)
            batch = parse_updates_payload(
                {"updates": [["add", 0, 4], ["add", 0, 1]]}  # second is dup
            )
            with pytest.raises(UpdateRejected):
                await managed.apply_updates(batch)
            after = await managed.read(managed.session.vertex_betweenness)
            assert after == before  # nothing from the bad batch landed
            assert managed.session.batches_applied == 0
            await registry.close_all()

        run(scenario())

    def test_purge_frees_the_name(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            payload = {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            await registry.create(payload)
            await registry.delete("demo", purge=True)
            with pytest.raises(SessionNotFound):
                registry.get("demo")
            await registry.create(payload)  # name reusable
            await registry.close_all()

        run(scenario())


class TestSingleWriter:
    def test_concurrent_posts_apply_in_fifo_event_order(self, tmp_path):
        """20 concurrent POST coroutines; the event stream must show gap-free
        batch indexes and the final scores must equal the oracle replay in
        that recorded order — i.e. batches never interleaved."""

        async def scenario():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            managed = registry.get("demo")
            stream = managed.bridge.open_stream()
            batches = [[("add", i % 5, 100 + i)] for i in range(20)]
            summaries = await asyncio.gather(
                *(
                    managed.apply_updates(
                        parse_updates_payload(
                            {"updates": [list(u) for u in batch]}
                        )
                    )
                    for batch in batches
                )
            )
            assert sorted(s["batch_index"] for s in summaries) == list(
                range(20)
            )
            scores = await managed.read(managed.session.vertex_betweenness)
            frames = []
            stream.close()
            async for frame in stream.frames():
                if frame["type"] == "batch_applied":
                    frames.append(frame)
            await registry.close_all()
            return frames, scores

        frames, scores = run(scenario())
        assert [f["batch_index"] for f in frames] == list(range(20))
        # Oracle: replay in the exact order the worker recorded.
        oracle = Graph()
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            oracle.add_edge(u, v)
        session = open_session(oracle)
        for frame in frames:
            session.apply_batch(
                [
                    EdgeUpdate.addition(u["u"], u["v"])
                    for u in frame["updates"]
                ]
            )
        assert scores == session.vertex_betweenness()
        session.close()

    def test_apply_after_close_raises_session_closed(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            managed = registry.get("demo")
            await registry.delete("demo")
            with pytest.raises(SessionClosed):
                await managed.apply_updates(
                    parse_updates_payload({"updates": [["add", 0, 4]]})
                )
            await registry.close_all()

        run(scenario())


class TestRestartRecovery:
    def test_restore_after_orderly_shutdown(self, tmp_path):
        async def first_life():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            managed = registry.get("demo")
            await managed.apply_updates(
                parse_updates_payload({"updates": [["add", 0, 4]]})
            )
            scores = await managed.read(managed.session.vertex_betweenness)
            await registry.close_all()
            return scores

        async def second_life():
            registry = await _started(tmp_path)
            managed = registry.get("demo")
            scores = await managed.read(managed.session.vertex_betweenness)
            info = managed.info()
            await registry.close_all()
            return scores, info

        before = run(first_life())
        after, info = run(second_life())
        assert after == before  # bit-identical across restart
        assert info["num_edges"] == 5

    def test_closed_sessions_stay_closed_after_restart(self, tmp_path):
        async def first_life():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            await registry.delete("demo")
            await registry.close_all()

        async def second_life():
            registry = await _started(tmp_path)
            assert registry.list_sessions() == []
            with pytest.raises(SessionClosed):
                registry.get("demo")
            await registry.close_all()

        run(first_life())
        run(second_life())

    def test_corrupt_checkpoint_surfaces_as_unavailable(self, tmp_path):
        async def first_life():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            await registry.close_all()
            return registry.settings.sessions_root / "demo" / "checkpoint.bin"

        checkpoint = run(first_life())
        checkpoint.write_bytes(b"garbage")

        async def second_life():
            registry = await _started(tmp_path)
            assert "demo" in registry.restore_failures
            with pytest.raises(SessionUnavailable) as excinfo:
                registry.get("demo")
            assert "demo" in str(excinfo.value)
            # A purge clears the wreck and frees the name.
            await registry.delete("demo", purge=True)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            await registry.close_all()

        run(second_life())

    def test_unreadable_meta_is_reported_not_fatal(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            wreck = registry.settings.sessions_root / "wreck"
            wreck.mkdir(parents=True)
            (wreck / "service.json").write_text("{not json", encoding="utf-8")
            await registry.close_all()
            fresh = SessionRegistry(registry.settings)
            report = await fresh.startup()
            assert "wreck" in report["failed"]
            await fresh.close_all()

        run(scenario())

    def test_meta_written_atomically(self, tmp_path):
        async def scenario():
            registry = await _started(tmp_path)
            await registry.create(
                {"name": "demo", "graph": PATH_GRAPH, "config": {}}
            )
            meta_path = (
                registry.settings.sessions_root / "demo" / "service.json"
            )
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            assert meta["resume_target"] == "checkpoint.bin"
            assert meta["closed"] is False
            assert not meta_path.with_suffix(".json.tmp").exists()
            await registry.close_all()

        run(scenario())
