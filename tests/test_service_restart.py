"""The kill-and-restart acceptance test: SIGKILL the server process,
restart it on the same root, and every session must restore with scores
exactly equal to a serial oracle replay.

This drives the real deployment artifact — ``repro serve`` in a child
process over TCP — not an in-process server, so it exercises process
boot, registry restore and the CLI wiring end to end.  Two named
sessions, one serial on a ``disk://`` store and one backed by a
``shard://`` ensemble, take update batches over HTTP before the KILL.
"""

import asyncio
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.api import open_session
from repro.core import EdgeUpdate
from repro.graph import Graph
from repro.service import ServiceClient

API_KEY = "restart-secret"

ALPHA_EDGES = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [0, 5]]
GAMMA_EDGES = [[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]]

ALPHA_BATCHES = [
    [("add", 0, 3)],
    [("add", 1, 6), ("add", 6, 4)],
    [("remove", 0, 3), ("add", 2, 5)],
]
GAMMA_BATCHES = [
    [("add", 1, 3)],
    [("add", 0, 4), ("add", 4, 2)],
]


def _spawn_server(root: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    repo_root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(repo_root / "src")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--root",
            str(root),
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--api-key",
            API_KEY,
            "--impl",
            "asyncio",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def _wait_healthy(port: int, process: subprocess.Popen, timeout=30.0):
    deadline = time.monotonic() + timeout
    last_error = None
    while time.monotonic() < deadline:
        if process.poll() is not None:
            out = process.stdout.read().decode(errors="replace")
            raise AssertionError(
                f"server died during startup (exit {process.returncode}):\n{out}"
            )
        try:
            async with ServiceClient("127.0.0.1", port) as probe:
                status, payload = await probe.get("/healthz")
                if status == 200:
                    return payload
        except OSError as exc:
            last_error = exc
        await asyncio.sleep(0.1)
    raise AssertionError(f"server never became healthy: {last_error}")


def _kill(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10)
    if process.stdout:
        process.stdout.close()


def _oracle(edges, batches):
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    session = open_session(graph)
    for batch in batches:
        session.apply_batch(
            [
                EdgeUpdate.addition(u, v)
                if kind == "add"
                else EdgeUpdate.removal(u, v)
                for kind, u, v in batch
            ]
        )
    scores = session.vertex_betweenness()
    session.close()
    return scores


def test_sigkill_and_restart_restores_every_session(tmp_path):
    root = tmp_path / "service-root"
    port = _free_port()
    server = _spawn_server(root, port)

    async def first_life():
        await _wait_healthy(port, server)
        async with ServiceClient("127.0.0.1", port, api_key=API_KEY) as client:
            await client.create_session(
                "alpha",
                edges=ALPHA_EDGES,
                config={"backend": "arrays", "store": "disk://"},
            )
            await client.create_session(
                "gamma",
                edges=GAMMA_EDGES,
                config={"executor": "shard", "store": "shard://?shards=2"},
            )
            for batch in ALPHA_BATCHES:
                summary = await client.post_updates("alpha", batch)
                assert summary["durable"] is True
            for batch in GAMMA_BATCHES:
                summary = await client.post_updates("gamma", batch)
                assert summary["durable"] is True
            alpha = await client.scores("alpha")
            gamma = await client.scores("gamma")
            return dict(map(tuple, alpha["scores"])), dict(
                map(tuple, gamma["scores"])
            )

    try:
        alpha_before, gamma_before = asyncio.run(first_life())
    finally:
        _kill(server)  # SIGKILL — no shutdown hooks, no final checkpoint

    # The on-disk root alone must bring both sessions back.
    port2 = _free_port()
    server2 = _spawn_server(root, port2)

    async def second_life():
        health = await _wait_healthy(port2, server2)
        assert health["restore_failures"] == {}
        assert health["sessions"] == 2
        async with ServiceClient(
            "127.0.0.1", port2, api_key=API_KEY
        ) as client:
            listing = await client.expect("GET", "/sessions")
            assert [s["name"] for s in listing["sessions"]] == [
                "alpha",
                "gamma",
            ]
            alpha = await client.scores("alpha")
            gamma = await client.scores("gamma")
            # Restored sessions keep serving updates.
            summary = await client.post_updates("alpha", [("add", 3, 6)])
            assert summary["applied"] == 1
            return dict(map(tuple, alpha["scores"])), dict(
                map(tuple, gamma["scores"])
            )

    try:
        alpha_after, gamma_after = asyncio.run(second_life())
    finally:
        _kill(server2)

    # Exact equality — not approximate — against the serial oracle replay.
    assert alpha_after == alpha_before == _oracle(ALPHA_EDGES, ALPHA_BATCHES)
    assert gamma_after == gamma_before == _oracle(GAMMA_EDGES, GAMMA_BATCHES)
