"""Session hardening: fault-isolated event dispatch, the locking contract,
idempotent close, and the resume error surface.

These are the guarantees the service layer builds on — an HTTP event
bridge is an untrusted subscriber, SSE readers race the single writer,
and a server restart resumes from whatever checkpoint survived.
"""

import threading

import pytest

from repro.api import (
    BatchApplied,
    BetweennessConfig,
    BetweennessSession,
    SessionClosed,
    open_session,
    resume_session,
)
from repro.core import EdgeUpdate
from repro.exceptions import ConfigurationError, SubscriberError

from tests.helpers import random_connected_graph


def _updates():
    return [
        [EdgeUpdate.addition(0, 3), EdgeUpdate.addition(1, 4)],
        [EdgeUpdate.removal(0, 3)],
        [EdgeUpdate.addition(0, 2), EdgeUpdate.addition(2, 4)],
    ]


class Boom(RuntimeError):
    pass


class FailingSubscriber:
    def __init__(self):
        self.seen = []

    def on_event(self, event):
        self.seen.append(event)
        raise Boom("subscriber crash")


class TestEmitFaultIsolation:
    def test_failure_does_not_skip_later_subscribers(self, path5):
        session = open_session(path5)
        failing = FailingSubscriber()
        after = []
        session.subscribe(failing)
        session.subscribe(after.append)
        with pytest.raises(SubscriberError):
            session.apply_batch([EdgeUpdate.addition(0, 2)])
        # The subscriber registered *after* the crashing one still saw the
        # event, and so did the crasher itself.
        assert [type(e).__name__ for e in after] == ["BatchApplied"]
        assert len(failing.seen) == 1

    def test_state_is_consistent_when_the_error_surfaces(self, path5):
        session = open_session(path5)
        session.subscribe(FailingSubscriber())
        with pytest.raises(SubscriberError):
            session.apply_batch([EdgeUpdate.addition(0, 2)])
        # The batch committed before dispatch: scores, the graph and the
        # batch counter all reflect it.
        assert session.batches_applied == 1
        assert session.graph.has_edge(0, 2)
        oracle = open_session(path5)
        oracle.apply_batch([EdgeUpdate.addition(0, 2)])
        assert session.vertex_betweenness() == oracle.vertex_betweenness()

    def test_error_carries_event_and_all_failures(self, path5):
        session = open_session(path5)
        a, b = FailingSubscriber(), FailingSubscriber()
        session.subscribe(a)
        session.subscribe(b)
        with pytest.raises(SubscriberError) as excinfo:
            session.apply_batch([EdgeUpdate.addition(0, 2)])
        error = excinfo.value
        assert isinstance(error.event, BatchApplied)
        assert [s for s, _ in error.failures] == [a, b]
        assert all(isinstance(exc, Boom) for _, exc in error.failures)
        assert error.__cause__ is error.failures[0][1]

    def test_plain_callable_subscribers_are_isolated_too(self, path5):
        session = open_session(path5)
        order = []

        def crasher(event):
            order.append("crasher")
            raise Boom()

        session.subscribe(crasher)
        session.subscribe(lambda event: order.append("survivor"))
        with pytest.raises(SubscriberError):
            session.add_edge(0, 2)
        assert order == ["crasher", "survivor"]

    def test_close_emits_session_closed_despite_failures(self, path5):
        session = open_session(path5)
        failing = FailingSubscriber()
        session.subscribe(failing)
        with pytest.raises(SubscriberError):
            session.close()
        assert session.closed  # teardown committed before dispatch
        assert type(failing.seen[-1]).__name__ == "SessionClosed"


class TestIdempotentClose:
    def test_repeated_close_emits_once(self, path5):
        events = []
        session = open_session(path5)
        session.subscribe(events.append)
        session.close()
        session.close()
        session.close()
        assert [type(e) for e in events].count(SessionClosed) == 1

    def test_concurrent_close_from_many_threads(self, path5):
        events = []
        session = open_session(path5)
        session.subscribe(events.append)
        barrier = threading.Barrier(8)
        errors = []

        def closer():
            barrier.wait()
            try:
                session.close()
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert [type(e) for e in events].count(SessionClosed) == 1

    def test_close_concurrent_with_pending_checkpoints(self, path5, tmp_path):
        """close() racing checkpoint() must serialize, never corrupt.

        Each checkpoint call either completes (file valid) or observes the
        closed session and raises ConfigurationError — no torn writes, no
        crashes from a store yanked mid-write.
        """
        target = tmp_path / "race.bin"
        session = open_session(path5, checkpoint_path=str(target))
        session.checkpoint()
        outcomes = []
        barrier = threading.Barrier(5)

        def checkpointer():
            barrier.wait()
            for _ in range(10):
                try:
                    session.checkpoint()
                    outcomes.append("ok")
                except ConfigurationError:
                    outcomes.append("closed")
                    return

        def closer():
            barrier.wait()
            session.close()

        threads = [threading.Thread(target=checkpointer) for _ in range(4)]
        threads.append(threading.Thread(target=closer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(outcomes) <= {"ok", "closed"}
        # Whatever survived on disk is a loadable checkpoint.
        resumed = resume_session(target)
        assert resumed.graph.num_vertices == path5.num_vertices
        resumed.close()


class TestConcurrentReaders:
    def test_readers_observe_batch_boundaries_only(self):
        """snapshot()/top_k() during a concurrent stream() must equal the
        state at *some* batch boundary — never a half-applied batch."""
        graph = random_connected_graph(14, 0.25, seed=3)
        batches = [
            [EdgeUpdate.addition(0, 100), EdgeUpdate.addition(100, 5)],
            [EdgeUpdate.removal(0, 100)],
            [EdgeUpdate.addition(1, 101), EdgeUpdate.addition(101, 7)],
            [EdgeUpdate.addition(0, 100)],
            [EdgeUpdate.removal(1, 101)],
        ]
        # Oracle: the exact score dict at every batch boundary.
        oracle = open_session(graph)
        boundaries = [oracle.vertex_betweenness()]
        for batch in batches:
            oracle.apply_batch(batch)
            boundaries.append(oracle.vertex_betweenness())
        oracle.close()

        session = open_session(graph)
        stop = threading.Event()
        observed = []
        mismatches = []

        def reader():
            while not stop.is_set():
                snap = session.snapshot()
                observed.append(snap.vertex_scores)
                if snap.vertex_scores not in boundaries:
                    mismatches.append(snap)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for batch in batches:
            session.apply_batch(batch)
        stop.set()
        for t in threads:
            t.join()
        assert mismatches == []
        assert observed  # the readers actually ran
        assert session.vertex_betweenness() == boundaries[-1]
        session.close()

    def test_top_k_consistent_under_writer(self, path5):
        session = open_session(path5)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                top = session.top_k(3)
                scores = session.vertex_betweenness()
                # top_k is one lock acquisition: its scores exist in *a*
                # consistent dict (re-reading may see a newer boundary,
                # but each returned pair is internally coherent).
                if any(score < 0 for _, score in top):
                    failures.append(top)
                if len(scores) < path5.num_vertices:
                    failures.append(scores)

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(20):
            session.apply_batch([EdgeUpdate.addition(i % 5, 200 + i)])
        stop.set()
        thread.join()
        assert failures == []
        session.close()


class TestResumeErrorSurface:
    def test_missing_checkpoint_names_the_path(self, tmp_path):
        missing = tmp_path / "nope" / "checkpoint.bin"
        with pytest.raises(ConfigurationError) as excinfo:
            resume_session(missing)
        assert str(missing) in str(excinfo.value)
        assert "cannot resume" in str(excinfo.value)

    def test_corrupt_checkpoint_names_the_path(self, tmp_path):
        corrupt = tmp_path / "checkpoint.bin"
        corrupt.write_bytes(b"this is not a checkpoint sidecar")
        with pytest.raises(ConfigurationError) as excinfo:
            resume_session(corrupt)
        assert str(corrupt) in str(excinfo.value)

    def test_truncated_checkpoint_is_a_configuration_error(
        self, path5, tmp_path
    ):
        target = tmp_path / "checkpoint.bin"
        session = open_session(path5, checkpoint_path=str(target))
        session.checkpoint()
        session.close()
        target.write_bytes(target.read_bytes()[: target.stat().st_size // 2])
        with pytest.raises(ConfigurationError) as excinfo:
            resume_session(target)
        assert str(target) in str(excinfo.value)

    def test_valid_checkpoint_still_resumes(self, path5, tmp_path):
        target = tmp_path / "checkpoint.bin"
        session = open_session(path5, checkpoint_path=str(target))
        session.apply_batch([EdgeUpdate.addition(0, 2)])
        session.checkpoint()
        expected = session.vertex_betweenness()
        session.close()
        resumed = resume_session(target)
        assert resumed.vertex_betweenness() == expected
        resumed.close()
