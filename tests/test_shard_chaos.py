"""Chaos suite: SIGKILL shard workers mid-stream, demand bit-identical scores.

The sharded executor's recovery contract is exact, not approximate: a
replacement worker is re-seeded from the dead shard's checkpoint sidecar
(graph adjacency in iteration order + records in store insertion order) and
replays the logged batches with the original adoption decisions, so it
accumulates every float in the same order the dead worker would have.  These
tests therefore assert ``==`` between chaos runs, clean runs and an
in-process per-shard serial reference — tolerances would hide a broken
replay path.

Fault injection uses the coordinator's test-only ``chaos`` hook
(``{shard_id: {"cursor": k, "when": "before"|"after"}}``): the worker
SIGKILLs itself either on receipt of batch ``k`` or after applying it but
before acknowledging — the worst case, where computed state is lost and must
be reconstructed.
"""

import os
import random
import signal

import pytest

from repro.api import (
    BetweennessConfig,
    BetweennessSession,
    ShardRecovered,
    WorkerFailed,
    resume_session,
)
from repro.core import EdgeUpdate, IncrementalBetweenness
from repro.core.updates import UpdateKind, validate_batch
from repro.graph import Graph
from repro.parallel import ShardCoordinator
from repro.parallel.mapreduce import merge_partial_scores
from repro.storage.buffers import active_segments, shm_available
from repro.storage.partition import partition_sources
from repro.storage.shard import ShardLayout, pick_shard

from tests.helpers import assert_scores_equal, random_connected_graph

NUM_SHARDS = 3
CHECKPOINT_EVERY = 2
STREAM_LENGTH = 8
#: The seed fixing which batch the chaos kill lands on.
KILL_SEED = 0xC4A05


def build_graph(directed: bool) -> Graph:
    if not directed:
        return random_connected_graph(14, 0.15, seed=31)
    rng = random.Random(31)
    graph = Graph(directed=True)
    graph.add_vertex(0)
    for vertex in range(1, 12):
        anchor = rng.randrange(vertex)
        if rng.random() < 0.5:
            graph.add_edge(anchor, vertex)
        else:
            graph.add_edge(vertex, anchor)
    for _ in range(10):
        u, v = rng.sample(range(12), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def update_stream(graph: Graph, length: int = STREAM_LENGTH, seed: int = 32):
    """Deterministic mixed stream: additions, removals and vertex births."""
    rng = random.Random(seed)
    shadow = graph.copy()
    next_vertex = 1000
    updates = []
    while len(updates) < length:
        roll = rng.random()
        edges = shadow.edge_list()
        if roll < 0.3 and len(edges) > shadow.num_vertices // 2:
            u, v = edges[rng.randrange(len(edges))]
            updates.append(EdgeUpdate.removal(u, v))
            shadow.remove_edge(u, v)
        elif roll < 0.55:
            vertices = shadow.vertex_list()
            anchor = vertices[rng.randrange(len(vertices))]
            if shadow.directed and rng.random() < 0.5:
                u, v = next_vertex, anchor
            else:
                u, v = anchor, next_vertex
            updates.append(EdgeUpdate.addition(u, v))
            shadow.add_edge(u, v)
            next_vertex += 1
        else:
            vertices = shadow.vertex_list()
            candidates = [
                (u, v)
                for u in vertices
                for v in vertices
                if u != v and not shadow.has_edge(u, v)
            ]
            if not candidates:
                continue
            u, v = candidates[rng.randrange(len(candidates))]
            updates.append(EdgeUpdate.addition(u, v))
            shadow.add_edge(u, v)
    return updates


def shard_run(graph, root, updates, chaos=None, events=None, shared_memory=False):
    """One full coordinator run (batch size 1); returns both score dicts."""
    layout = ShardLayout(
        root=root, num_shards=NUM_SHARDS, checkpoint_every=CHECKPOINT_EVERY
    )
    notify = None
    if events is not None:
        notify = lambda kind, **fields: events.append((kind, fields))
    with ShardCoordinator(
        graph, layout, notify=notify, chaos=chaos, shared_memory=shared_memory
    ) as coordinator:
        for update in updates:
            coordinator.apply_batch([update])
        return coordinator.betweenness()


def per_shard_serial_reference(graph, updates):
    """The sharded computation, run serially in-process: the exact oracle.

    Mirrors the coordinator's dispatch loop — same source partition, same
    ``pick_shard`` adoptions, same per-batch apply order, same stable-order
    merge — without any worker processes, so every float lands in the same
    order as in the distributed run.
    """
    partitions = partition_sources(graph.vertex_list(), NUM_SHARDS)
    frameworks = [
        IncrementalBetweenness(graph.copy(), sources=list(p.sources))
        for p in partitions
    ]
    shard_sizes = [len(p.sources) for p in partitions]
    driver = graph.copy()
    for update in updates:
        batch = [update]
        births = validate_batch(driver, batch)
        adopt = [[] for _ in range(NUM_SHARDS)]
        for vertex in births:
            shard_id = pick_shard(shard_sizes)
            adopt[shard_id].append(vertex)
            shard_sizes[shard_id] += 1
        for shard_id, framework in enumerate(frameworks):
            framework.apply_updates(batch, adopt=adopt[shard_id] or None)
        u, v = update.endpoints
        if update.kind is UpdateKind.ADDITION:
            driver.add_edge(u, v)
        else:
            driver.remove_edge(u, v)
    vertex = merge_partial_scores([f.vertex_betweenness() for f in frameworks])
    edge = merge_partial_scores([f.edge_betweenness() for f in frameworks])
    return vertex, edge


def unpartitioned_serial(graph, updates):
    framework = IncrementalBetweenness(graph.copy())
    for update in updates:
        framework.apply(update)
    return framework


@pytest.mark.parametrize("directed", [False, True])
class TestCleanShardRuns:
    def test_matches_per_shard_reference_exactly(self, tmp_path, directed):
        graph = build_graph(directed)
        updates = update_stream(graph)
        vertex, edge = shard_run(graph, tmp_path / "shards", updates)
        ref_vertex, ref_edge = per_shard_serial_reference(graph, updates)
        assert vertex == ref_vertex
        assert edge == ref_edge

    def test_matches_unpartitioned_serial_within_tolerance(
        self, tmp_path, directed
    ):
        """Partition-grouped summation differs from the flat serial sum only
        by float associativity (documented in ``merge_partial_scores``)."""
        graph = build_graph(directed)
        updates = update_stream(graph)
        vertex, edge = shard_run(graph, tmp_path / "shards", updates)
        serial = unpartitioned_serial(graph, updates)
        assert_scores_equal(vertex, serial.vertex_betweenness(), 1e-8, "vertex")
        assert_scores_equal(edge, serial.edge_betweenness(), 1e-8, "edge")


@pytest.mark.parametrize("directed", [False, True])
@pytest.mark.parametrize("when", ["before", "after"])
class TestSeededKill:
    def test_kill_mid_stream_is_bit_identical(self, tmp_path, directed, when):
        """ISSUE acceptance: kill a worker at a seeded random batch index;
        final scores must be exactly ``==`` the clean run's."""
        graph = build_graph(directed)
        updates = update_stream(graph)
        rng = random.Random(KILL_SEED)
        kill_cursor = rng.randrange(len(updates))
        kill_shard = rng.randrange(NUM_SHARDS)

        clean = shard_run(graph, tmp_path / "clean", updates)
        events = []
        chaotic = shard_run(
            graph,
            tmp_path / "chaos",
            updates,
            chaos={kill_shard: {"cursor": kill_cursor, "when": when}},
            events=events,
        )
        assert chaotic[0] == clean[0]
        assert chaotic[1] == clean[1]

        failures = [f for kind, f in events if kind == "worker_failed"]
        recoveries = [f for kind, f in events if kind == "shard_recovered"]
        assert [f["shard"] for f in failures] == [kill_shard]
        assert [f["shard"] for f in recoveries] == [kill_shard]
        assert failures[0]["batch_cursor"] == kill_cursor
        # The replacement replays exactly the batches its sidecar predates.
        expected_replay = kill_cursor - (
            kill_cursor // CHECKPOINT_EVERY
        ) * CHECKPOINT_EVERY
        assert recoveries[0]["replayed_batches"] == expected_replay


class TestHarderKillSchedules:
    def test_kill_on_first_batch_recovers_from_round_zero(self, tmp_path):
        """Round 0 runs at bootstrap, so even a worker that dies on its very
        first batch has a checkpoint to be re-seeded from."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        clean = shard_run(graph, tmp_path / "clean", updates)
        events = []
        chaotic = shard_run(
            graph,
            tmp_path / "chaos",
            updates,
            chaos={0: {"cursor": 0, "when": "before"}},
            events=events,
        )
        assert chaotic[0] == clean[0]
        assert chaotic[1] == clean[1]
        assert [f["shard"] for kind, f in events if kind == "shard_recovered"] == [0]

    def test_kills_on_two_shards_at_different_cursors(self, tmp_path):
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        clean = shard_run(graph, tmp_path / "clean", updates)
        events = []
        chaotic = shard_run(
            graph,
            tmp_path / "chaos",
            updates,
            chaos={
                1: {"cursor": 4, "when": "after"},
                2: {"cursor": 3, "when": "before"},
            },
            events=events,
        )
        assert chaotic[0] == clean[0]
        assert chaotic[1] == clean[1]
        recovered = sorted(f["shard"] for kind, f in events if kind == "shard_recovered")
        assert recovered == [1, 2]


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
class TestShmChaos:
    """The zero-copy data plane under fire: workers die *while attached* to
    the driver's shared segments (graph seed, update ring); recovery must
    stay bit-identical and the namespace must come back empty."""

    def test_clean_shm_run_matches_heap_run_exactly(self, tmp_path):
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        heap = shard_run(graph, tmp_path / "heap", updates)
        shm = shard_run(graph, tmp_path / "shm", updates, shared_memory=True)
        assert shm[0] == heap[0]
        assert shm[1] == heap[1]
        assert active_segments() == []

    @pytest.mark.parametrize("when", ["before", "after"])
    def test_kill_while_attached_is_bit_identical(self, tmp_path, when):
        """Chaos-kill a worker mid-batch with shared memory on: the dead
        worker's mappings die with it, the replacement re-attaches to the
        live ring/label state, and scores still ``==`` the heap run's."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        rng = random.Random(KILL_SEED)
        kill_cursor = rng.randrange(len(updates))
        kill_shard = rng.randrange(NUM_SHARDS)

        clean = shard_run(graph, tmp_path / "clean", updates)
        events = []
        chaotic = shard_run(
            graph,
            tmp_path / "chaos",
            updates,
            chaos={kill_shard: {"cursor": kill_cursor, "when": when}},
            events=events,
            shared_memory=True,
        )
        assert chaotic[0] == clean[0]
        assert chaotic[1] == clean[1]
        recovered = [f["shard"] for kind, f in events if kind == "shard_recovered"]
        assert recovered == [kill_shard]
        # No segment survives the run — neither the driver's (released at
        # close) nor any the dead worker held mappings into.
        assert active_segments() == []

    def test_external_sigkill_while_attached_reclaims_segments(self, tmp_path):
        """SIGKILL from outside (no chaos cooperation) while the worker is
        attached; the coordinator must reclaim whatever the dead process
        owned and finish with exact scores."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        clean = shard_run(graph, tmp_path / "clean", updates)

        layout = ShardLayout(
            root=tmp_path / "shm",
            num_shards=NUM_SHARDS,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        with ShardCoordinator(graph, layout, shared_memory=True) as coordinator:
            for update in updates[:3]:
                coordinator.apply_batch([update])
            victim = coordinator._handles[2]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(timeout=10.0)
            for update in updates[3:]:
                coordinator.apply_batch([update])
            chaotic = coordinator.betweenness()
        assert chaotic[0] == clean[0]
        assert chaotic[1] == clean[1]
        assert active_segments() == []

    def test_resume_with_shared_memory(self, tmp_path):
        """A heap-written root resumes onto the shm data plane (and the
        other way round): the wire format is a session choice, not a
        property of the durable state."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        root = tmp_path / "shards"
        layout = ShardLayout(
            root=root, num_shards=NUM_SHARDS, checkpoint_every=CHECKPOINT_EVERY
        )
        with ShardCoordinator(graph, layout) as coordinator:
            for update in updates[:5]:
                coordinator.apply_batch([update])

        resumed = ShardCoordinator.resume(root, shared_memory=True)
        try:
            assert resumed.shared_memory
            for update in updates[5:]:
                resumed.apply_batch([update])
            vertex, edge = resumed.betweenness()
        finally:
            resumed.close()
        ref_vertex, ref_edge = per_shard_serial_reference(graph, updates)
        assert vertex == ref_vertex
        assert edge == ref_edge
        assert active_segments() == []


class TestSessionLevelFaults:
    def _config(self, root, directed):
        return BetweennessConfig(
            executor="shard",
            workers=NUM_SHARDS,
            directed=directed,
            store=(
                f"shard://{root}?shards={NUM_SHARDS}"
                f"&checkpoint_every={CHECKPOINT_EVERY}"
            ),
        )

    def test_external_sigkill_emits_events_and_keeps_scores_exact(self, tmp_path):
        """Kill a worker process from the outside (no cooperation from the
        worker) mid-stream; the session must emit ``WorkerFailed`` then
        ``ShardRecovered`` and still finish with exact scores."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        events = []
        config = self._config(tmp_path / "shards", directed=False)
        with BetweennessSession(graph, config, subscribers=[events.append]) as session:
            for update in updates[:3]:
                session.apply(update)
            victim = session._cluster._handles[1]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(timeout=10.0)
            for update in updates[3:]:
                session.apply(update)
            vertex = session.vertex_betweenness()
            edge = session.edge_betweenness()

        ref_vertex, ref_edge = per_shard_serial_reference(graph, updates)
        assert vertex == ref_vertex
        assert edge == ref_edge
        failed = [e for e in events if isinstance(e, WorkerFailed)]
        recovered = [e for e in events if isinstance(e, ShardRecovered)]
        assert [e.shard for e in failed] == [1]
        assert [e.shard for e in recovered] == [1]
        kill_index = events.index(failed[0])
        assert events.index(recovered[0]) == kill_index + 1

    def test_resume_session_from_disk_alone(self, tmp_path):
        """Close a sharded session mid-history and restore it from nothing
        but the shard root: scores, cursor and adoption state all survive,
        and continuing the stream stays bit-identical."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        root = tmp_path / "shards"
        config = self._config(root, directed=False)
        with BetweennessSession(graph, config, subscribers=[]) as session:
            for update in updates[:5]:
                session.apply(update)
            expected_mid = session.vertex_betweenness()

        resumed = resume_session(root)
        try:
            assert resumed.config.executor == "shard"
            assert resumed.vertex_betweenness() == expected_mid
            for update in updates[5:]:
                resumed.apply(update)
            vertex = resumed.vertex_betweenness()
            edge = resumed.edge_betweenness()
        finally:
            resumed.close()

        ref_vertex, ref_edge = per_shard_serial_reference(graph, updates)
        assert vertex == ref_vertex
        assert edge == ref_edge

    def test_resume_after_chaos_run(self, tmp_path):
        """A root written by a run that survived kills is as resumable as a
        clean one — recovery leaves no scars on disk."""
        graph = build_graph(directed=False)
        updates = update_stream(graph)
        root = tmp_path / "shards"
        layout = ShardLayout(
            root=root, num_shards=NUM_SHARDS, checkpoint_every=CHECKPOINT_EVERY
        )
        with ShardCoordinator(
            graph, layout, chaos={0: {"cursor": 2, "when": "after"}}
        ) as coordinator:
            for update in updates[:6]:
                coordinator.apply_batch([update])

        resumed = ShardCoordinator.resume(root)
        try:
            assert resumed.batch_cursor == 6
            for update in updates[6:]:
                resumed.apply_batch([update])
            vertex, edge = resumed.betweenness()
        finally:
            resumed.close()
        ref_vertex, ref_edge = per_shard_serial_reference(graph, updates)
        assert vertex == ref_vertex
        assert edge == ref_edge
