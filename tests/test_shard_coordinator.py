"""Shard layout, manifest and coordinator lifecycle (non-chaos paths).

The kill/recovery behaviour itself is pinned by ``tests/test_shard_chaos.py``;
this module covers the deterministic machinery around it: ``shard://`` URI
resolution, the on-disk layout and manifest codec, the ``pick_shard``
rebalancing rule, and the coordinator's refusal paths.
"""

import random

import pytest

from repro.core import EdgeUpdate
from repro.exceptions import (
    ConfigurationError,
    StoreCorruptedError,
    WorkerFailedError,
)
from repro.parallel import ShardCoordinator
from repro.storage import create_store, parse_store_uri
from repro.storage.shard import (
    DEFAULT_CHECKPOINT_EVERY,
    ShardLayout,
    ShardManifest,
    load_manifest,
    pick_shard,
    prune_stale_stores,
    store_filename,
)

from tests.helpers import random_connected_graph


class TestShardURI:
    def test_uri_resolves_to_layout(self):
        layout = ShardLayout.from_uri("shard:///var/data/bc?shards=8&checkpoint_every=4")
        assert str(layout.root) == "/var/data/bc"
        assert layout.num_shards == 8
        assert layout.checkpoint_every == 4

    def test_defaults(self):
        layout = ShardLayout.from_uri("shard:///var/data/bc")
        assert layout.num_shards == 1
        assert layout.checkpoint_every == DEFAULT_CHECKPOINT_EVERY

    def test_workers_fill_in_when_uri_is_silent(self):
        layout = ShardLayout.from_uri("shard:///var/data/bc", workers=6)
        assert layout.num_shards == 6

    def test_workers_must_agree_with_shards_param(self):
        assert ShardLayout.from_uri("shard:///d?shards=4", workers=4).num_shards == 4
        assert ShardLayout.from_uri("shard:///d?shards=4", workers=1).num_shards == 4
        with pytest.raises(ConfigurationError, match="workers=3"):
            ShardLayout.from_uri("shard:///d?shards=4", workers=3)

    @pytest.mark.parametrize(
        "uri",
        [
            "shard://",                       # no root directory
            "shard:///d?shards=0",            # < 1
            "shard:///d?shards=two",          # not an integer
            "shard:///d?checkpoint_every=0",
            "shard:///d?wibble=1",            # unknown param
        ],
    )
    def test_bad_uris_rejected(self, uri):
        with pytest.raises(ConfigurationError):
            ShardLayout.from_uri(uri)

    def test_non_shard_uri_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardLayout.from_uri("disk:///var/data/bd.bin")

    def test_uri_parses_through_the_registry(self):
        parsed = parse_store_uri("shard:///d?shards=2&checkpoint_every=8")
        assert parsed.scheme == "shard"
        assert parsed.params == {"shards": "2", "checkpoint_every": "8"}

    def test_shard_uri_is_not_openable_as_a_single_store(self):
        """The registry resolves every scheme, but a shard ensemble is not a
        store — the factory must say so, pointing at the shard executor."""
        with pytest.raises(ConfigurationError, match="shard"):
            create_store("shard:///var/data/bc?shards=2", [0, 1, 2])


class TestLayoutPaths:
    def test_deterministic_paths(self, tmp_path):
        layout = ShardLayout(root=tmp_path, num_shards=3, checkpoint_every=4)
        assert layout.manifest_path == tmp_path / "manifest.bin"
        assert layout.shard_dir(2) == tmp_path / "shard-0002"
        assert layout.checkpoint_path(2) == tmp_path / "shard-0002" / "checkpoint.bin"
        assert layout.store_path(1, 12) == tmp_path / "shard-0001" / "store-00000012.bin"
        assert store_filename(7) == "store-00000007.bin"

    def test_is_shard_root(self, tmp_path):
        layout = ShardLayout(root=tmp_path, num_shards=1, checkpoint_every=4)
        assert not ShardLayout.is_shard_root(tmp_path)
        layout.write_manifest(
            ShardManifest(
                num_shards=1,
                checkpoint_every=4,
                backend="dicts",
                directed=False,
                batch_cursor=0,
                shard_sizes=[5],
            )
        )
        assert ShardLayout.is_shard_root(tmp_path)
        assert ShardLayout.is_shard_root(tmp_path / "manifest.bin")
        assert not ShardLayout.is_shard_root(tmp_path / "absent" / "manifest.bin")

    def test_prune_keeps_only_the_named_cursor(self, tmp_path):
        for cursor in (2, 4, 6):
            (tmp_path / store_filename(cursor)).write_bytes(b"x")
        (tmp_path / "checkpoint.bin").write_bytes(b"x")
        prune_stale_stores(tmp_path, 6)
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert remaining == ["checkpoint.bin", store_filename(6)]


class TestManifest:
    def _manifest(self):
        return ShardManifest(
            num_shards=2,
            checkpoint_every=4,
            backend="arrays",
            directed=True,
            batch_cursor=12,
            assignment=[[1000, 0], [1001, 1]],
            shard_sizes=[8, 7],
            config={"backend": "arrays"},
        )

    def test_round_trip(self, tmp_path):
        layout = ShardLayout(root=tmp_path, num_shards=2, checkpoint_every=4)
        layout.write_manifest(self._manifest())
        loaded = layout.read_manifest()
        assert loaded == self._manifest()
        assert loaded.assignment_map() == {1000: 0, 1001: 1}

    def test_load_manifest_discovers_shard_count(self, tmp_path):
        ShardLayout(root=tmp_path, num_shards=2, checkpoint_every=4).write_manifest(
            self._manifest()
        )
        assert load_manifest(tmp_path).num_shards == 2

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a shard root"):
            load_manifest(tmp_path / "nowhere")

    def test_shard_count_mismatch_refused(self, tmp_path):
        ShardLayout(root=tmp_path, num_shards=2, checkpoint_every=4).write_manifest(
            self._manifest()
        )
        wrong = ShardLayout(root=tmp_path, num_shards=3, checkpoint_every=4)
        with pytest.raises(ConfigurationError, match="resharding"):
            wrong.read_manifest()


class TestPickShard:
    def test_least_loaded_wins(self):
        assert pick_shard([3, 1, 2]) == 1

    def test_ties_break_to_lowest_id(self):
        assert pick_shard([2, 1, 1]) == 1
        assert pick_shard([0, 0, 0]) == 0

    def test_is_a_pure_function_of_the_size_history(self):
        """Replaying the same birth sequence from the same starting sizes
        reproduces the same assignment — the property coordinator restarts
        and shard recovery both lean on."""
        rng = random.Random(7)
        for _ in range(25):
            sizes = [rng.randrange(10) for _ in range(4)]
            first, second = [], []
            for run in (first, second):
                scratch = list(sizes)
                for _ in range(12):
                    shard = pick_shard(scratch)
                    scratch[shard] += 1
                    run.append(shard)
            assert first == second

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pick_shard([])


class TestCoordinatorLifecycle:
    def _layout(self, tmp_path, shards=2, every=2):
        return ShardLayout(
            root=tmp_path / "shards", num_shards=shards, checkpoint_every=every
        )

    def test_fresh_root_refuses_reinitialisation(self, tmp_path):
        graph = random_connected_graph(8, 0.2, seed=5)
        layout = self._layout(tmp_path)
        with ShardCoordinator(graph, layout):
            pass
        with pytest.raises(ConfigurationError, match="already initialised"):
            ShardCoordinator(graph, layout)

    def test_resume_refuses_a_root_that_never_existed(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a shard root"):
            ShardCoordinator.resume(tmp_path / "nowhere")

    def test_bootstrap_writes_round_zero(self, tmp_path):
        graph = random_connected_graph(8, 0.2, seed=5)
        layout = self._layout(tmp_path)
        with ShardCoordinator(graph, layout) as coordinator:
            assert coordinator.last_checkpoint_cursor == 0
            for shard_id in range(layout.num_shards):
                assert layout.checkpoint_path(shard_id).exists()
                assert layout.store_path(shard_id, 0).exists()
            assert layout.manifest_path.exists()

    def test_rounds_follow_the_cadence_and_prune(self, tmp_path):
        graph = random_connected_graph(8, 0.2, seed=5)
        layout = self._layout(tmp_path, every=2)
        with ShardCoordinator(graph, layout) as coordinator:
            coordinator.add_edge(0, 100)
            assert coordinator.last_checkpoint_cursor == 0
            coordinator.add_edge(1, 101)
            assert coordinator.last_checkpoint_cursor == 2
            stores = sorted(
                p.name for p in layout.shard_dir(0).glob("store-*.bin")
            )
            assert stores == [store_filename(2)]
            assert load_manifest(layout.root).batch_cursor == 2

    def test_close_makes_the_tail_durable(self, tmp_path):
        graph = random_connected_graph(8, 0.2, seed=5)
        layout = self._layout(tmp_path, every=4)
        coordinator = ShardCoordinator(graph, layout)
        coordinator.add_edge(0, 100)
        coordinator.close()  # cursor 1 < cadence, but close checkpoints
        assert load_manifest(layout.root).batch_cursor == 1
        resumed = ShardCoordinator.resume(layout.root)
        try:
            assert resumed.batch_cursor == 1
            assert resumed.graph.has_edge(0, 100)
        finally:
            resumed.close()

    def test_closed_coordinator_refuses_use(self, tmp_path):
        graph = random_connected_graph(8, 0.2, seed=5)
        coordinator = ShardCoordinator(graph, self._layout(tmp_path))
        coordinator.close()
        coordinator.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            coordinator.add_edge(0, 100)

    def test_adoptions_survive_restart(self, tmp_path):
        """Stream-born vertices keep their shard across a coordinator
        restart: the manifest carries both the assignment and the sizes
        ``pick_shard`` is a function of."""
        graph = random_connected_graph(9, 0.2, seed=6)
        layout = self._layout(tmp_path, shards=3, every=1)
        with ShardCoordinator(graph, layout) as coordinator:
            coordinator.add_edge(0, 100)
            coordinator.add_edge(1, 101)
            before = {v: coordinator.shard_of(v) for v in (100, 101)}
            sizes_before = list(coordinator._shard_sizes)
        resumed = ShardCoordinator.resume(layout.root)
        try:
            assert {v: resumed.shard_of(v) for v in (100, 101)} == before
            assert resumed._shard_sizes == sizes_before
            assert resumed.shard_of(0) is None  # not stream-born
            resumed.add_edge(2, 102)
            # The next adoption continues the same deterministic sequence a
            # never-restarted coordinator would have produced.
            expected = pick_shard(sizes_before)
            assert resumed.shard_of(102) == expected
        finally:
            resumed.close()

    def test_deterministic_application_error_is_not_recovered(self, tmp_path):
        """A bad update is state, not a process failure: both sides validate
        it and the coordinator raises without burning recovery attempts."""
        from repro.exceptions import UpdateError

        graph = random_connected_graph(8, 0.2, seed=5)
        with ShardCoordinator(graph, self._layout(tmp_path)) as coordinator:
            with pytest.raises(UpdateError):
                coordinator.add_edge(0, 1)  # already present

    def test_unrecoverable_when_no_sidecar(self, tmp_path):
        """If a shard's sidecar vanishes, recovery must fail loudly instead
        of silently rebuilding from nothing."""
        import os
        import signal as _signal

        graph = random_connected_graph(8, 0.2, seed=5)
        layout = self._layout(tmp_path)
        coordinator = ShardCoordinator(graph, layout)
        try:
            layout.checkpoint_path(0).unlink()
            os.kill(coordinator._handles[0].process.pid, _signal.SIGKILL)
            coordinator._handles[0].process.join(timeout=10.0)
            with pytest.raises(WorkerFailedError, match="no checkpoint sidecar"):
                coordinator.add_edge(0, 100)
        finally:
            coordinator.close(checkpoint=False)
