"""Unit tests for the zero-copy data plane's lowest layers.

Covers the buffer seam (:mod:`repro.storage.buffers`), the dispatch plane
(:mod:`repro.parallel.dataplane`) and the shared-memory export/attach
surface of :class:`~repro.storage.arrays.ArrayBDStore`:

* descriptor round-trips and size accounting,
* ownership (creators unlink, attachers only close),
* generation stamps refusing stale descriptor bundles,
* growth republishing a new segment generation,
* the crash-reclaim sweep for segments owned by a SIGKILLed process,
* ring append/rotate/read and label-table replication.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.algorithms.brandes import SourceData
from repro.core import EdgeUpdate
from repro.exceptions import ConfigurationError, StorageError
from repro.parallel.dataplane import (
    DEFAULT_RING_CAPACITY,
    LabelTable,
    RingReader,
    UpdateRing,
    decode_rows,
    encode_batch,
)
from repro.storage.arrays import ArrayBDStore
from repro.storage.buffers import (
    GenerationStamp,
    HeapAllocator,
    ShmAllocator,
    ShmDescriptor,
    active_segments,
    attach,
    attach_bundle,
    get_allocator,
    owned_segment_names,
    reclaim_process_segments,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


class TestShmDescriptor:
    def test_payload_round_trip(self):
        descriptor = ShmDescriptor(
            name="repro_test", dtype="<f8", shape=(3, 4), generation=7
        )
        rebuilt = ShmDescriptor.from_payload(descriptor.to_payload())
        assert rebuilt == descriptor

    def test_nbytes_matches_numpy(self):
        descriptor = ShmDescriptor(name="x", dtype="<i8", shape=(5, 3))
        assert descriptor.nbytes == np.empty((5, 3), dtype="<i8").nbytes

    def test_payload_is_plain_data(self):
        payload = ShmDescriptor(name="x", dtype="<i4", shape=(2,)).to_payload()
        assert payload == {
            "name": "x", "dtype": "<i4", "shape": [2], "generation": 0
        }


class TestHeapAllocator:
    def test_not_shared_and_no_descriptor(self):
        buffer = HeapAllocator().zeros((4,), np.int64)
        assert not buffer.shared
        assert buffer.segment_name is None
        with pytest.raises(StorageError):
            buffer.descriptor()
        buffer.release()  # no-op, must not raise
        buffer.release()  # idempotent

    def test_get_allocator_defaults_to_heap(self):
        assert get_allocator(None).kind == "heap"
        assert get_allocator("heap").kind == "heap"
        with pytest.raises(ConfigurationError):
            get_allocator("mystery")


class TestShmOwnership:
    def test_attacher_sees_owner_writes(self):
        owner = ShmAllocator(hint="t").zeros((8,), np.float64)
        try:
            owner.array[:] = np.arange(8.0)
            attached = attach(owner.descriptor())
            assert np.array_equal(attached.array, np.arange(8.0))
            attached.release()
        finally:
            owner.release()

    def test_attach_is_read_only_by_default(self):
        owner = ShmAllocator(hint="t").zeros((4,), np.int64)
        try:
            attached = attach(owner.descriptor())
            with pytest.raises((ValueError, RuntimeError)):
                attached.array[0] = 1
            attached.release()
            writable = attach(owner.descriptor(), writable=True)
            writable.array[0] = 99
            writable.release()
            assert owner.array[0] == 99
        finally:
            owner.release()

    def test_attacher_release_does_not_unlink(self):
        owner = ShmAllocator(hint="t").zeros((4,), np.int64)
        try:
            descriptor = owner.descriptor()
            attach(descriptor).release()
            # The segment must still be attachable: only the owner unlinks.
            again = attach(descriptor)
            again.release()
        finally:
            owner.release()

    def test_owner_release_unlinks(self):
        owner = ShmAllocator(hint="t").zeros((4,), np.int64)
        descriptor = owner.descriptor()
        owner.release()
        with pytest.raises(StorageError):
            attach(descriptor)

    def test_size_mismatch_refused(self):
        owner = ShmAllocator(hint="t").zeros((4,), np.int64)
        try:
            descriptor = ShmDescriptor(
                name=owner.segment_name, dtype="<i8", shape=(1 << 20,)
            )
            with pytest.raises(StorageError):
                attach(descriptor)
        finally:
            owner.release()

    def test_leak_registry_tracks_ownership(self):
        buffer = ShmAllocator(hint="t").zeros((4,), np.int64)
        name = buffer.segment_name
        assert name in owned_segment_names()
        assert name in active_segments()
        buffer.release()
        assert name not in owned_segment_names()
        assert name not in active_segments()


class TestGenerationStamp:
    def test_check_passes_then_refuses_after_bump(self):
        stamp = GenerationStamp.create("t")
        try:
            GenerationStamp.check(stamp.name, 0)
            stamp.bump()
            assert stamp.value == 1
            GenerationStamp.check(stamp.name, 1)
            with pytest.raises(ConfigurationError):
                GenerationStamp.check(stamp.name, 0)
        finally:
            stamp.release()

    def test_check_refuses_when_publisher_gone(self):
        stamp = GenerationStamp.create("t")
        name = stamp.name
        stamp.release()
        with pytest.raises(ConfigurationError):
            GenerationStamp.check(name, 0)


class TestAttachBundle:
    def test_mixed_generations_refused(self):
        descriptors = [
            ShmDescriptor(name="a", dtype="<i8", shape=(1,), generation=0),
            ShmDescriptor(name="b", dtype="<i8", shape=(1,), generation=1),
        ]
        with pytest.raises(ConfigurationError):
            attach_bundle(descriptors)

    def test_partial_failure_closes_everything(self):
        owner = ShmAllocator(hint="t").zeros((4,), np.int64)
        try:
            good = owner.descriptor()
            gone = ShmDescriptor(name="repro_never_existed", dtype="<i8", shape=(1,))
            with pytest.raises(StorageError):
                attach_bundle([good, gone])
        finally:
            owner.release()


class TestArrayStoreExport:
    def _store(self):
        return ArrayBDStore(["a", "b", "c"], capacity=4, allocator="shm")

    def test_heap_store_refuses_export(self):
        store = ArrayBDStore(["a", "b"], capacity=2)
        with pytest.raises(ConfigurationError):
            store.export_column_descriptors()
        store.close()

    def test_attach_round_trip(self):
        store = self._store()
        try:
            store.put(SourceData(
                source="a",
                distance={"a": 0, "b": 1, "c": 2},
                sigma={"a": 1, "b": 1, "c": 1},
                delta={"a": 0.0, "b": 0.5, "c": 0.0},
            ))
            attached = ArrayBDStore.attach(store.export_column_descriptors())
            try:
                theirs, ours = attached.get("a"), store.get("a")
                assert theirs.distance == ours.distance
                assert theirs.sigma == ours.sigma
                assert theirs.delta == ours.delta
            finally:
                attached.close()
        finally:
            store.close()

    def test_growth_republishes_and_refuses_stale(self):
        store = self._store()
        try:
            before = store.generation
            stale = store.export_column_descriptors()
            # Register enough vertices to outgrow capacity=4 and force a
            # re-allocation (hence a generation bump + stamp bump).
            for extra in "defgh":
                store.register_vertex(extra)
            assert store.generation > before
            with pytest.raises(ConfigurationError):
                ArrayBDStore.attach(stale)
            fresh = ArrayBDStore.attach(store.export_column_descriptors())
            fresh.close()
        finally:
            store.close()


class TestCrashReclaim:
    def test_sigkilled_owner_segments_are_reclaimed(self):
        """A worker SIGKILLed while owning segments cannot clean up; the
        supervisor's pid-marker sweep must."""
        # Spawn the resource tracker *before* forking: a child that lazily
        # spawns its own tracker leaves an orphan process holding inherited
        # pipe fds after the SIGKILL (which can wedge the test harness),
        # and that private tracker would race this test's reclaim sweep.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        context = multiprocessing.get_context("fork")
        # Plain pipe + sleep, NOT a multiprocessing.Event: SIGKILLing a
        # process that sleeps inside Event.wait leaves the condition's
        # shared semaphores unacknowledged and deadlocks the parent's
        # eventual set() — exactly the lock-free design constraint the
        # production data plane obeys (workers never hold driver locks).
        parent_end, child_end = context.Pipe(duplex=False)

        def child(conn):
            buffer = ShmAllocator(hint="orphan").zeros((16,), np.int64)
            conn.send(buffer.segment_name)
            conn.close()
            time.sleep(60.0)
            buffer.release()  # never reached: parent SIGKILLs us

        process = context.Process(target=child, args=(child_end,))
        process.start()
        child_end.close()
        try:
            assert parent_end.poll(10.0), "child never created its segment"
            created = parent_end.recv()
            marker = f"-p{process.pid:x}-"
            orphans = [n for n in active_segments() if marker in n]
            assert created in orphans
            os.kill(process.pid, signal.SIGKILL)
            process.join(10.0)
            # SIGKILL skips atexit: the segments are orphaned...
            assert [n for n in active_segments() if marker in n] == orphans
            # ...until the supervisor sweeps the namespace for the pid.
            reclaimed = reclaim_process_segments(process.pid)
            assert sorted(reclaimed) == sorted(orphans)
            assert [n for n in active_segments() if marker in n] == []
        finally:
            if process.is_alive():  # pragma: no cover - only on assert failure
                process.kill()
                process.join(5.0)
            parent_end.close()


class TestLabelTable:
    def test_intern_and_extend_replicate(self):
        driver = LabelTable(["a", "b"])
        worker = LabelTable(["a", "b"])
        assert driver.intern("c") == (2, True)
        assert driver.intern("a") == (0, False)
        worker.extend(["c"])
        assert worker.labels() == driver.labels()
        assert worker.id_of("c") == 2

    def test_extend_is_idempotent(self):
        """A replacement worker seeded with the current table receives the
        in-flight batch's label announcement again; ids must not shift."""
        table = LabelTable(["a", "b", "c"])
        table.extend(["b", "c", "d"])
        assert table.labels() == ["a", "b", "c", "d"]
        table.extend(["b", "c", "d"])
        assert table.labels() == ["a", "b", "c", "d"]


class TestUpdateRing:
    def _batch(self):
        return [
            EdgeUpdate.addition("a", "b"),
            EdgeUpdate.removal("b", "c"),
            EdgeUpdate.addition("c", "d"),
        ]

    def test_encode_decode_round_trip(self):
        driver = LabelTable(["a", "b", "c"])
        worker = LabelTable(["a", "b", "c"])
        rows, new_labels = encode_batch(driver, self._batch())
        assert new_labels == ["d"]
        worker.extend(new_labels)
        assert decode_rows(rows, worker) == self._batch()

    def test_dispatch_through_ring(self):
        table = LabelTable(["a", "b", "c", "d"])
        ring = UpdateRing(capacity=16)
        try:
            reader = RingReader(ring.payload())
            rows, _ = encode_batch(table, self._batch())
            start, length, rotated = ring.append(rows)
            assert (start, length, rotated) == (0, 3, None)
            assert decode_rows(reader.read(start, length), table) == self._batch()
            reader.release()
        finally:
            ring.release()

    def test_rotation_doubles_and_reattaches(self):
        table = LabelTable(["a", "b"])
        ring = UpdateRing(capacity=16)
        try:
            reader = RingReader(ring.payload())
            rows = np.tile(
                encode_batch(table, [EdgeUpdate.addition("a", "b")])[0], (10, 1)
            )
            ring.append(rows)
            start, length, rotated = ring.append(rows)  # 20 > 16: rotate
            assert rotated is not None
            assert ring.generation == 1
            assert ring.capacity >= 32
            assert start == 0 and length == 10
            reader.reattach(rotated)
            assert np.array_equal(reader.read(start, length), rows)
            reader.release()
        finally:
            ring.release()

    def test_reattach_same_generation_is_noop(self):
        ring = UpdateRing(capacity=16)
        try:
            reader = RingReader(ring.payload())
            mapping = reader._buffer
            reader.reattach(ring.payload())
            assert reader._buffer is mapping
            reader.release()
        finally:
            ring.release()

    def test_default_capacity(self):
        ring = UpdateRing()
        try:
            assert ring.capacity == DEFAULT_RING_CAPACITY
        finally:
            ring.release()
