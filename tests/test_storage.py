"""Tests for the betweenness-data stores (memory, disk, codec, index, partition)."""

import pytest

from repro.algorithms import brandes_betweenness
from repro.algorithms.brandes import SourceData
from repro.exceptions import PartitionError, StoreClosedError, StoreCorruptedError, VertexNotFoundError
from repro.storage import DiskBDStore, InMemoryBDStore, VertexIndex, partition_sources
from repro.storage.codec import (
    BYTES_PER_VERTEX,
    decode_record,
    empty_record,
    encode_record,
    record_size,
)


def make_data(source, entries):
    """Build a SourceData from {vertex: (d, sigma, delta)}."""
    data = SourceData(source=source)
    for vertex, (d, sigma, delta) in entries.items():
        data.distance[vertex] = d
        data.sigma[vertex] = sigma
        data.delta[vertex] = delta
    return data


class TestVertexIndex:
    def test_slots_are_dense_and_stable(self):
        index = VertexIndex(["a", "b"])
        assert index.slot("a") == 0 and index.slot("b") == 1
        assert index.add("c") == 2
        assert index.add("a") == 0  # idempotent
        assert len(index) == 3
        assert index.vertex(2) == "c"

    def test_unknown_vertex_raises(self):
        index = VertexIndex()
        with pytest.raises(VertexNotFoundError):
            index.slot("missing")
        with pytest.raises(IndexError):
            index.vertex(0)

    def test_iteration_in_slot_order(self):
        index = VertexIndex([3, 1, 2])
        assert list(index) == [3, 1, 2]
        assert index.vertices() == [3, 1, 2]


class TestCodec:
    def test_round_trip(self):
        index = VertexIndex([0, 1, 2, 3])
        data = make_data(1, {0: (1, 2, 0.5), 1: (0, 1, 0.0), 3: (2, 4, 1.25)})
        payload = encode_record(data, index, capacity=6)
        assert len(payload) == record_size(6) == 6 * BYTES_PER_VERTEX
        decoded = decode_record(payload, 1, index, capacity=6)
        assert decoded.distance == data.distance
        assert decoded.sigma == data.sigma
        assert decoded.delta == data.delta

    def test_unreachable_vertices_omitted(self):
        index = VertexIndex([0, 1])
        data = make_data(0, {0: (0, 1, 0.0)})
        decoded = decode_record(encode_record(data, index, 4), 0, index, 4)
        assert 1 not in decoded.distance

    def test_empty_record_decodes_to_nothing(self):
        index = VertexIndex([0, 1])
        decoded = decode_record(empty_record(4), 0, index, 4)
        assert decoded.distance == {}

    def test_capacity_too_small_raises(self):
        index = VertexIndex([0, 1, 2])
        data = make_data(0, {0: (0, 1, 0.0)})
        with pytest.raises(StoreCorruptedError):
            encode_record(data, index, capacity=2)

    def test_wrong_payload_size_raises(self):
        index = VertexIndex([0])
        with pytest.raises(StoreCorruptedError):
            decode_record(b"\x00" * 5, 0, index, capacity=4)


class TestInMemoryStore:
    def test_put_get_and_contains(self):
        store = InMemoryBDStore()
        data = make_data("s", {"s": (0, 1, 0.0), "t": (1, 1, 0.0)})
        store.put(data)
        assert "s" in store and len(store) == 1
        assert store.get("s") is data

    def test_endpoint_distances(self):
        store = InMemoryBDStore()
        store.put(make_data(0, {0: (0, 1, 0.0), 1: (2, 1, 0.0)}))
        assert store.endpoint_distances(0, 1, 99) == (2, None)

    def test_add_source_initialises_self_reaching_record(self):
        store = InMemoryBDStore()
        store.add_source("new")
        data = store.get("new")
        assert data.distance == {"new": 0}
        assert data.sigma == {"new": 1}

    def test_closed_store_raises(self):
        store = InMemoryBDStore()
        store.close()
        with pytest.raises(StoreClosedError):
            store.add_source(0)

    def test_context_manager(self):
        with InMemoryBDStore() as store:
            store.add_source(1)
        with pytest.raises(StoreClosedError):
            store.get(1)


class TestDiskStore:
    def test_round_trip_matches_brandes_data(self, two_triangles_bridge, tmp_path):
        result = brandes_betweenness(two_triangles_bridge, collect_source_data=True)
        store = DiskBDStore(
            two_triangles_bridge.vertex_list(), path=tmp_path / "bd.bin"
        )
        for data in result.source_data.values():
            store.put(data)
        for source, expected in result.source_data.items():
            loaded = store.get(source)
            assert loaded.distance == expected.distance
            assert loaded.sigma == expected.sigma
            assert loaded.delta == pytest.approx(expected.delta)
        store.close()

    def test_endpoint_distances_reads_only_two_values(self, path5, tmp_path):
        result = brandes_betweenness(path5, collect_source_data=True)
        store = DiskBDStore(path5.vertex_list(), path=tmp_path / "bd.bin")
        for data in result.source_data.values():
            store.put(data)
        read_before = store.bytes_read
        assert store.endpoint_distances(0, 2, 4) == (2, 4)
        assert store.bytes_read - read_before == 4  # two int16 values

    def test_unknown_endpoint_distance_is_none(self, path5):
        store = DiskBDStore(path5.vertex_list())
        assert store.endpoint_distances(0, 0, 777) == (0, None)
        store.close()

    def test_grow_beyond_capacity_rebuilds_file(self):
        store = DiskBDStore([0, 1], capacity=2)
        store.put(make_data(0, {0: (0, 1, 0.0), 1: (1, 1, 0.0)}))
        store.add_source(2)  # exceeds capacity of 2 -> grow
        assert store.capacity > 2
        assert store.get(0).distance == {0: 0, 1: 1}
        assert store.get(2).distance == {2: 0}
        store.close()

    def test_capacity_smaller_than_vertices_rejected(self):
        with pytest.raises(StoreCorruptedError):
            DiskBDStore([0, 1, 2], capacity=2)

    def test_temporary_file_removed_on_close(self):
        store = DiskBDStore([0, 1])
        path = store.path
        assert path.exists()
        store.close()
        assert not path.exists()

    def test_named_file_kept_on_close(self, tmp_path):
        target = tmp_path / "persist.bin"
        store = DiskBDStore([0, 1], path=target)
        store.close()
        assert target.exists()

    def test_closed_store_raises(self):
        store = DiskBDStore([0])
        store.close()
        with pytest.raises(StoreClosedError):
            store.get(0)

    def test_io_accounting_increases(self, path5):
        store = DiskBDStore(path5.vertex_list())
        written_after_init = store.bytes_written
        store.put(make_data(0, {0: (0, 1, 0.0)}))
        assert store.bytes_written > written_after_init
        store.get(0)
        assert store.bytes_read > 0
        store.close()


class TestPartition:
    def test_balanced_sizes(self):
        partitions = partition_sources(list(range(10)), 3)
        assert [len(p) for p in partitions] == [4, 3, 3]
        assert [p.worker_id for p in partitions] == [0, 1, 2]

    def test_union_is_disjoint_and_complete(self):
        sources = list(range(17))
        partitions = partition_sources(sources, 4)
        seen = [v for p in partitions for v in p]
        assert sorted(seen) == sources

    def test_more_workers_than_sources(self):
        partitions = partition_sources([1, 2], 5)
        assert sum(len(p) for p in partitions) == 2
        assert len(partitions) == 5

    def test_invalid_worker_count(self):
        with pytest.raises(PartitionError):
            partition_sources([1], 0)
