"""Durability tests for the disk store: header, reopen, growth, corruption.

These cover the reopen contract introduced with the versioned on-disk
format: a store written by one process can be closed, reopened by path
(never truncated), and must serve exactly the records that were saved —
including after capacity growth — while corrupted or truncated files are
rejected loudly instead of being misread.
"""

import pickle
import struct

import pytest

from repro.algorithms import brandes_betweenness
from repro.algorithms.brandes import SourceData
from repro.core import IncrementalBetweenness
from repro.exceptions import (
    StoreCorruptedError,
    StoreExistsError,
    StoreVersionError,
)
from repro.storage import DiskBDStore
from repro.storage.codec import MAX_DISTANCE, MAX_SIGMA
from repro.storage.header import (
    HEADER_SIZE,
    STORE_MAGIC,
    encode_metadata,
    metadata_crc,
    FLAG_DIRECTED,
    pack_header,
    unpack_header,
)

from tests.helpers import assert_scores_equal


def make_data(source, entries):
    data = SourceData(source=source)
    for vertex, (d, sigma, delta) in entries.items():
        data.distance[vertex] = d
        data.sigma[vertex] = sigma
        data.delta[vertex] = delta
    return data


class TestHeader:
    def test_pack_unpack_round_trip(self):
        raw = pack_header(capacity=37, meta_size=120, meta_crc=0xDEADBEEF)
        assert len(raw) == HEADER_SIZE
        assert unpack_header(raw) == (37, 120, 0xDEADBEEF, 0)

    def test_directed_flag_round_trip(self):
        raw = pack_header(4, 0, 0, flags=FLAG_DIRECTED)
        assert unpack_header(raw) == (4, 0, 0, FLAG_DIRECTED)

    def test_unknown_flags_rejected(self):
        raw = pack_header(4, 0, 0, flags=0x80)
        with pytest.raises(StoreVersionError):
            unpack_header(raw)

    def test_short_header_rejected(self):
        with pytest.raises(StoreCorruptedError):
            unpack_header(b"RB")

    def test_bad_magic_rejected(self):
        raw = bytearray(pack_header(4, 0, 0))
        raw[:4] = b"NOPE"
        with pytest.raises(StoreCorruptedError):
            unpack_header(bytes(raw))

    def test_future_version_rejected(self):
        raw = bytearray(pack_header(4, 0, 0))
        struct.pack_into("<H", raw, 4, 99)
        with pytest.raises(StoreVersionError):
            unpack_header(bytes(raw))


class TestCreateRefusesClobber:
    def test_existing_nonempty_file_is_refused(self, tmp_path):
        target = tmp_path / "precious.bin"
        target.write_bytes(b"do not destroy me")
        with pytest.raises(StoreExistsError):
            DiskBDStore([0, 1], path=target)
        assert target.read_bytes() == b"do not destroy me"

    def test_existing_store_is_refused_and_kept(self, tmp_path):
        target = tmp_path / "bd.bin"
        store = DiskBDStore([0, 1], path=target)
        store.put(make_data(0, {0: (0, 1, 0.0), 1: (1, 1, 0.0)}))
        store.close()
        with pytest.raises(StoreExistsError):
            DiskBDStore([0, 1], path=target)
        reopened = DiskBDStore.open(target)
        assert reopened.get(0).distance == {0: 0, 1: 1}
        reopened.close()

    def test_open_or_create_dispatches_on_content(self, tmp_path):
        target = tmp_path / "bd.bin"
        created = DiskBDStore.open_or_create([0, 1], target)
        created.put(make_data(1, {1: (0, 1, 0.0), 0: (1, 2, 0.5)}))
        created.close()
        reopened = DiskBDStore.open_or_create([0, 1], target)
        assert reopened.get(1).sigma == {1: 1, 0: 2}
        reopened.close()


class TestReopenRoundTrip:
    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_records_survive_close_and_reopen(
        self, two_triangles_bridge, tmp_path, use_mmap
    ):
        result = brandes_betweenness(two_triangles_bridge, collect_source_data=True)
        store = DiskBDStore(
            two_triangles_bridge.vertex_list(),
            path=tmp_path / "bd.bin",
            use_mmap=use_mmap,
        )
        for data in result.source_data.values():
            store.put(data)
        capacity = store.capacity
        store.close()

        reopened = DiskBDStore.open(tmp_path / "bd.bin", use_mmap=use_mmap)
        assert reopened.capacity == capacity
        assert sorted(reopened.sources()) == sorted(result.source_data)
        for source, expected in result.source_data.items():
            loaded = reopened.get(source)
            assert loaded.distance == expected.distance
            assert loaded.sigma == expected.sigma
            assert loaded.delta == expected.delta
        reopened.close()

    def test_reopened_store_resumes_into_exact_framework(
        self, two_triangles_bridge, tmp_path
    ):
        # Build, stream a few updates, close — then reopen by path and check
        # the resumed scores are *bit-identical* to a from-scratch rebuild.
        store = DiskBDStore(
            two_triangles_bridge.vertex_list(), path=tmp_path / "bd.bin"
        )
        ibc = IncrementalBetweenness(two_triangles_bridge, store=store)
        ibc.add_edge(0, 4)
        ibc.remove_edge(2, 3)
        graph_after = ibc.graph.copy()
        store.close()

        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        resumed = IncrementalBetweenness.from_store(graph_after, reopened)
        reference = brandes_betweenness(graph_after)
        assert resumed.vertex_betweenness() == reference.vertex_scores
        assert resumed.edge_betweenness() == reference.edge_scores
        # ... and stays exact under further updates.
        resumed.add_edge(1, 5)
        assert_scores_equal(
            resumed.vertex_betweenness(),
            brandes_betweenness(resumed.graph).vertex_scores,
        )
        reopened.close()

    def test_growth_then_reopen(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin", capacity=2)
        store.put(make_data(0, {0: (0, 1, 0.0), 1: (1, 1, 0.0)}))
        for vertex in range(2, 9):  # force several capacity rebuilds
            store.add_source(vertex)
        grown_capacity = store.capacity
        assert grown_capacity > 2
        store.close()

        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        assert reopened.capacity == grown_capacity
        assert sorted(reopened.sources()) == list(range(9))
        assert reopened.get(0).distance == {0: 0, 1: 1}
        assert reopened.get(7).distance == {7: 0}
        reopened.close()

    def test_non_source_slots_survive_growth(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin", capacity=2, sources=[0])
        store.put(make_data(0, {0: (0, 1, 0.0), 1: (1, 1, 0.0)}))
        store.register_vertex(2)  # grows: capacity 2 cannot hold a third slot
        assert store.capacity > 2
        assert list(store.sources()) == [0]
        assert store.get(0).distance == {0: 0, 1: 1}
        store.close()
        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        assert list(reopened.sources()) == [0]
        assert reopened.endpoint_distances(0, 1, 2) == (1, None)
        reopened.close()


class TestCorruptionRejection:
    def _fresh_store(self, tmp_path):
        store = DiskBDStore([0, 1, 2], path=tmp_path / "bd.bin")
        store.put(make_data(0, {0: (0, 1, 0.0), 2: (1, 1, 0.0)}))
        store.close()
        return tmp_path / "bd.bin"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DiskBDStore.open(tmp_path / "nothing.bin")

    def test_short_header(self, tmp_path):
        target = tmp_path / "bd.bin"
        target.write_bytes(STORE_MAGIC + b"\x01")
        with pytest.raises(StoreCorruptedError):
            DiskBDStore.open(target)

    def test_foreign_file(self, tmp_path):
        target = tmp_path / "bd.bin"
        target.write_bytes(b"\x00" * 4096)
        with pytest.raises(StoreCorruptedError):
            DiskBDStore.open(target)

    def test_truncated_record_area(self, tmp_path):
        path = self._fresh_store(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(HEADER_SIZE + 10)
        with pytest.raises(StoreCorruptedError):
            DiskBDStore.open(path)

    def test_metadata_crc_mismatch(self, tmp_path):
        path = self._fresh_store(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a bit inside the metadata block
        path.write_bytes(bytes(data))
        with pytest.raises(StoreCorruptedError):
            DiskBDStore.open(path)

    def test_metadata_inconsistent_with_capacity(self, tmp_path):
        target = tmp_path / "bd.bin"
        # Hand-craft a file whose metadata lists more vertices than capacity.
        meta = encode_metadata([0, 1, 2, 3], [0])
        from repro.storage.codec import empty_record

        body = empty_record(2) * 2
        target.write_bytes(
            pack_header(2, len(meta), metadata_crc(meta)) + body + meta
        )
        with pytest.raises(StoreCorruptedError):
            DiskBDStore.open(target)


class TestOverflowGuards:
    def test_distance_overflow_raises(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        bad = make_data(0, {0: (0, 1, 0.0), 1: (MAX_DISTANCE + 1, 1, 0.0)})
        with pytest.raises(StoreCorruptedError):
            store.put(bad)
        store.close()

    def test_negative_distance_raises(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        bad = make_data(0, {0: (0, 1, 0.0), 1: (-1, 1, 0.0)})
        with pytest.raises(StoreCorruptedError):
            store.put(bad)
        store.close()

    def test_sigma_overflow_raises(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        bad = make_data(0, {0: (0, 1, 0.0), 1: (1, MAX_SIGMA + 1, 0.0)})
        with pytest.raises(StoreCorruptedError):
            store.put(bad)
        store.close()

    def test_max_values_round_trip(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        extreme = make_data(0, {0: (0, 1, 0.0), 1: (MAX_DISTANCE, MAX_SIGMA, 2.0)})
        store.put(extreme)
        loaded = store.get(0)
        assert loaded.distance[1] == MAX_DISTANCE
        assert loaded.sigma[1] == MAX_SIGMA
        store.close()

    def test_failed_put_leaves_previous_record_intact(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        good = make_data(0, {0: (0, 1, 0.0), 1: (1, 1, 0.0)})
        store.put(good)
        bad = make_data(0, {0: (0, 1, 0.0), 1: (MAX_DISTANCE + 1, 1, 0.0)})
        with pytest.raises(StoreCorruptedError):
            store.put(bad)
        assert store.get(0).distance == {0: 0, 1: 1}
        store.close()


class TestAccountingAndModes:
    def test_creation_writes_each_record_once(self, tmp_path):
        # The old formatter wrote every source record twice (an empty record
        # immediately overwritten by an identity record); total bytes written
        # during creation must not exceed the file that results.
        store = DiskBDStore(list(range(20)), path=tmp_path / "bd.bin")
        assert store.bytes_written <= store.path.stat().st_size
        store.close()

    def test_mmap_and_buffered_serve_identical_records(self, path5, tmp_path):
        result = brandes_betweenness(path5, collect_source_data=True)
        store = DiskBDStore(path5.vertex_list(), path=tmp_path / "bd.bin")
        for data in result.source_data.values():
            store.put(data)
        store.close()
        via_mmap = DiskBDStore.open(tmp_path / "bd.bin", use_mmap=True)
        via_buffered = DiskBDStore.open(tmp_path / "bd.bin", use_mmap=False)
        assert via_mmap.uses_mmap and not via_buffered.uses_mmap
        for source in result.source_data:
            a, b = via_mmap.get(source), via_buffered.get(source)
            assert (a.distance, a.sigma, a.delta) == (b.distance, b.sigma, b.delta)
            assert via_mmap.endpoint_distances(
                source, 0, 4
            ) == via_buffered.endpoint_distances(source, 0, 4)
        via_mmap.close()
        via_buffered.close()

    def test_generation_bumps_once_per_dirty_session(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        created = store.generation
        store.put(make_data(0, {0: (0, 1, 0.0)}))
        store.put(make_data(1, {1: (0, 1, 0.0)}))
        assert store.generation == created + 1  # one bump per session, not per put
        store.close()
        reopened = DiskBDStore.open(tmp_path / "bd.bin")
        assert reopened.generation == created + 1
        reopened.put(make_data(0, {0: (0, 1, 0.0), 1: (1, 1, 0.0)}))
        assert reopened.generation == created + 2
        reopened.close()
