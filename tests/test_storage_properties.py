"""Property-based and failure-injection tests for the storage layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.algorithms.brandes import SourceData
from repro.exceptions import StoreCorruptedError
from repro.storage import DiskBDStore, InMemoryBDStore, VertexIndex
from repro.storage.codec import decode_record, encode_record, record_size


@st.composite
def source_records(draw):
    """Random (vertex set, SourceData) pairs with consistent reachability."""
    n = draw(st.integers(min_value=1, max_value=12))
    vertices = list(range(n))
    source = draw(st.sampled_from(vertices))
    data = SourceData(source=source)
    data.distance[source] = 0
    data.sigma[source] = 1
    data.delta[source] = 0.0
    for vertex in vertices:
        if vertex == source:
            continue
        reachable = draw(st.booleans())
        if not reachable:
            continue
        data.distance[vertex] = draw(st.integers(min_value=1, max_value=30))
        data.sigma[vertex] = draw(st.integers(min_value=1, max_value=10_000))
        data.delta[vertex] = draw(
            st.floats(min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False)
        )
    return vertices, data


class TestCodecProperties:
    @given(source_records())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, record):
        vertices, data = record
        index = VertexIndex(vertices)
        capacity = len(vertices) + 3
        decoded = decode_record(
            encode_record(data, index, capacity), data.source, index, capacity
        )
        assert decoded.distance == data.distance
        assert decoded.sigma == data.sigma
        assert decoded.delta == pytest.approx(data.delta)

    @given(source_records())
    @settings(max_examples=30, deadline=None)
    def test_disk_store_round_trip(self, record):
        vertices, data = record
        store = DiskBDStore(vertices)
        try:
            store.put(data)
            loaded = store.get(data.source)
            assert loaded.distance == data.distance
            assert loaded.sigma == data.sigma
            assert loaded.delta == pytest.approx(data.delta)
        finally:
            store.close()

    @given(source_records())
    @settings(max_examples=30, deadline=None)
    def test_memory_and_disk_endpoint_peek_agree(self, record):
        vertices, data = record
        memory = InMemoryBDStore()
        disk = DiskBDStore(vertices)
        try:
            memory.put(data)
            disk.put(data)
            for u in vertices[:3]:
                for v in vertices[-3:]:
                    assert memory.endpoint_distances(
                        data.source, u, v
                    ) == disk.endpoint_distances(data.source, u, v)
        finally:
            disk.close()


class TestFailureInjection:
    def test_truncated_file_is_detected_on_reopen(self, tmp_path):
        store = DiskBDStore([0, 1, 2], path=tmp_path / "bd.bin", capacity=4)
        store.put(_simple_record(0, [0, 1, 2]))
        store.close()
        with open(tmp_path / "bd.bin", "r+b") as handle:
            handle.truncate(record_size(4) // 2)
        with pytest.raises(StoreCorruptedError):
            DiskBDStore.open(tmp_path / "bd.bin")

    def test_truncated_file_is_detected_by_buffered_reads(self, tmp_path):
        store = DiskBDStore(
            [0, 1, 2], path=tmp_path / "bd.bin", capacity=4, use_mmap=False
        )
        store.put(_simple_record(0, [0, 1, 2]))
        # Truncate the backing file behind the store's back.
        with open(store.path, "r+b") as handle:
            handle.truncate(record_size(4) // 2)
        with pytest.raises(StoreCorruptedError):
            store.get(2)
        store.close()

    def test_out_of_range_values_rejected_on_write(self, tmp_path):
        store = DiskBDStore([0, 1], path=tmp_path / "bd.bin")
        overflowing = _simple_record(0, [0, 1])
        overflowing.distance[1] = 2**15  # one past the int16 maximum
        with pytest.raises(StoreCorruptedError):
            store.put(overflowing)
        store.close()


def _simple_record(source, vertices):
    data = SourceData(source=source)
    for i, vertex in enumerate(vertices):
        data.distance[vertex] = i
        data.sigma[vertex] = 1
        data.delta[vertex] = 0.0
    return data
