"""Tests for the utility helpers (stats, timing, RNG, validation, types)."""

import random
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.types import UNREACHABLE, canonical_edge
from repro.utils import (
    Timer,
    empirical_cdf,
    ensure_rng,
    geometric_mean,
    median,
    percentile,
    summarize,
    timed,
)
from repro.utils.rng import spawn
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestStats:
    def test_median_odd_and_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_percentile_bounds(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5
        assert percentile(data, 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_empirical_cdf_properties(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
        assert empirical_cdf([]) == []

    def test_summarize(self):
        stats = summarize([4, 1, 3, 2])
        assert stats.minimum == 1 and stats.maximum == 4
        assert stats.median == 2.5
        assert stats.count == 4
        assert stats.as_row() == (1, 2.5, 4)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTimer:
    def test_laps_accumulate(self):
        timer = Timer()
        with timer.measure():
            time.sleep(0.002)
        with timer.measure():
            pass
        assert timer.count == 2
        assert timer.total >= 0.002
        assert timer.mean > 0

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.count == 0 and timer.mean == 0.0

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0


class TestRng:
    def test_ensure_rng_with_seed_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_ensure_rng_passthrough(self):
        rng = random.Random(3)
        assert ensure_rng(rng) is rng

    def test_spawn_produces_independent_streams(self):
        parent = ensure_rng(1)
        child_a = spawn(parent)
        parent2 = ensure_rng(1)
        child_b = spawn(parent2)
        assert child_a.random() == child_b.random()


class TestValidation:
    def test_require_positive(self):
        assert require_positive("x", 2) == 2
        with pytest.raises(ConfigurationError):
            require_positive("x", 0)

    def test_require_non_negative(self):
        assert require_non_negative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            require_non_negative("x", -1)

    def test_require_probability(self):
        assert require_probability("p", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            require_probability("p", 1.5)

    def test_require_in_range(self):
        assert require_in_range("x", 5, 1, 10) == 5
        with pytest.raises(ConfigurationError):
            require_in_range("x", 0, 1, 10)
        with pytest.raises(ConfigurationError):
            require_in_range("x", 11, 1, 10)


class TestTypes:
    def test_canonical_edge_orders_comparable_vertices(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_canonical_edge_mixed_types_is_deterministic(self):
        assert canonical_edge("a", 1) == canonical_edge(1, "a")

    def test_unreachable_sentinel(self):
        assert UNREACHABLE == -1
