"""Property tests: the MP / MO / DO configurations are interchangeable.

The three configurations of the framework (in-memory with predecessor
lists, in-memory without, on-disk without) trade memory and I/O for speed
but must produce bit-for-bit the same betweenness trajectories on any update
script.  These hypothesis tests drive all three with the same random scripts
used by the core metamorphic tests.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IncrementalBetweenness
from repro.graph import Graph
from repro.storage import DiskBDStore

from tests.helpers import assert_scores_equal
from tests.test_incremental_properties import apply_script, graph_and_updates

settings.register_profile(
    "repro-variants",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVariantEquivalence:
    @given(graph_and_updates())
    @settings(parent=settings.get_profile("repro-variants"))
    def test_memory_and_disk_stores_agree(self, data):
        graph, script = data
        memory = IncrementalBetweenness(graph)
        disk = IncrementalBetweenness(graph, store=DiskBDStore(graph.vertex_list()))
        try:
            apply_script(memory, script)
            apply_script(disk, script)
            assert_scores_equal(memory.vertex_betweenness(), disk.vertex_betweenness())
            assert_scores_equal(memory.edge_betweenness(), disk.edge_betweenness())
        finally:
            disk.store.close()

    @given(graph_and_updates())
    @settings(parent=settings.get_profile("repro-variants"))
    def test_predecessor_tracking_does_not_change_scores(self, data):
        graph, script = data
        plain = IncrementalBetweenness(graph)
        tracked = IncrementalBetweenness(graph, maintain_predecessors=True)
        apply_script(plain, script)
        apply_script(tracked, script)
        assert_scores_equal(plain.vertex_betweenness(), tracked.vertex_betweenness())
        assert_scores_equal(plain.edge_betweenness(), tracked.edge_betweenness())

    @given(graph_and_updates())
    @settings(parent=settings.get_profile("repro-variants"))
    def test_partitioned_execution_matches_single_instance(self, data):
        graph, script = data
        vertices = graph.vertex_list()
        if len(vertices) < 2:
            return
        single = IncrementalBetweenness(graph)
        half = len(vertices) // 2
        left = IncrementalBetweenness(graph, sources=vertices[:half])
        right = IncrementalBetweenness(graph, sources=vertices[half:])
        apply_script(single, script)
        for kind, u, v in script:
            for mapper in (left, right):
                if kind == "add":
                    mapper.add_edge(u, v)
                else:
                    mapper.remove_edge(u, v)
        combined = {}
        for mapper in (left, right):
            for key, value in mapper.vertex_betweenness().items():
                combined[key] = combined.get(key, 0.0) + value
        assert_scores_equal(single.vertex_betweenness(), combined)
